#include "runner/options.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

#include "comm/fault.hpp"
#include "comm/network_model.hpp"
#include "la/device.hpp"
#include "runner/registry.hpp"
#include "serve/arrival.hpp"
#include "serve/batching.hpp"
#include "support/check.hpp"

namespace nadmm::runner {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

[[noreturn]] void reject(const std::string& flag, const std::string& value,
                         const std::string& why) {
  throw InvalidArgument("--" + flag + ": invalid value '" + value + "' (" +
                        why + ")");
}

std::int64_t parse_int(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) reject(flag, value, "expected an integer");
    return v;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    reject(flag, value, "expected an integer");
  }
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) reject(flag, value, "expected a number");
    return v;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    reject(flag, value, "expected a number");
  }
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string to_string(OptType type) {
  switch (type) {
    case OptType::kInt: return "int";
    case OptType::kDouble: return "double";
    case OptType::kString: return "string";
    case OptType::kFlag: return "flag";
  }
  return "?";
}

OptionSet& OptionSet::add(OptionSpec spec) {
  NADMM_CHECK(!spec.name.empty(), "option spec needs a name");
  NADMM_CHECK(find(spec.name) == nullptr,
              "option --" + spec.name + " specified twice");
  specs_.push_back(std::move(spec));
  return *this;
}

OptionSet& OptionSet::add_int(const std::string& name,
                              std::int64_t default_value,
                              const std::string& help,
                              OptionValidator validator) {
  return add({name, OptType::kInt, std::to_string(default_value), help,
              std::move(validator)});
}

OptionSet& OptionSet::add_double(const std::string& name, double default_value,
                                 const std::string& help,
                                 OptionValidator validator) {
  return add({name, OptType::kDouble, fmt_double(default_value), help,
              std::move(validator)});
}

OptionSet& OptionSet::add_string(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help,
                                 OptionValidator validator) {
  return add(
      {name, OptType::kString, default_value, help, std::move(validator)});
}

OptionSet& OptionSet::add_flag(const std::string& name,
                               const std::string& help) {
  return add({name, OptType::kFlag, "false", help, {}});
}

OptionSet& OptionSet::extend(const OptionSet& other) {
  for (const auto& spec : other.specs_) add(spec);
  return *this;
}

void OptionSet::register_into(CliParser& cli) const {
  for (const auto& spec : specs_) {
    switch (spec.type) {
      case OptType::kInt:
        cli.add_int(spec.name, parse_int(spec.name, spec.default_value),
                    spec.help);
        break;
      case OptType::kDouble:
        cli.add_double(spec.name, parse_double(spec.name, spec.default_value),
                       spec.help);
        break;
      case OptType::kString:
        cli.add_string(spec.name, spec.default_value, spec.help);
        break;
      case OptType::kFlag:
        cli.add_flag(spec.name, spec.help);
        break;
    }
  }
}

void OptionSet::validate(const CliParser& cli) const {
  for (const auto& spec : specs_) {
    if (!spec.validator) continue;
    std::string value;
    switch (spec.type) {
      case OptType::kInt:
        value = std::to_string(cli.get_int(spec.name));
        break;
      case OptType::kDouble:
        value = fmt_double(cli.get_double(spec.name));
        break;
      case OptType::kString:
        value = cli.get_string(spec.name);
        break;
      case OptType::kFlag:
        value = cli.get_flag(spec.name) ? "true" : "false";
        break;
    }
    spec.validator(spec.name, value);
  }
}

const OptionSpec* OptionSet::find(const std::string& name) const {
  const auto it = std::find_if(
      specs_.begin(), specs_.end(),
      [&](const OptionSpec& spec) { return spec.name == name; });
  return it == specs_.end() ? nullptr : &*it;
}

// ---------------------------------------------------------------------------
// Validators.
// ---------------------------------------------------------------------------

OptionValidator v_int_min(std::int64_t min) {
  return [min](const std::string& flag, const std::string& value) {
    if (parse_int(flag, value) < min) {
      reject(flag, value, "must be >= " + std::to_string(min));
    }
  };
}

OptionValidator v_double_min(double min, bool inclusive) {
  return [min, inclusive](const std::string& flag, const std::string& value) {
    const double v = parse_double(flag, value);
    if (inclusive ? v < min : v <= min) {
      reject(flag, value,
             std::string("must be ") + (inclusive ? ">= " : "> ") +
                 fmt_double(min));
    }
  };
}

OptionValidator v_one_of(std::vector<std::string> allowed) {
  std::string expected;
  for (const auto& a : allowed) {
    if (!expected.empty()) expected += '|';
    expected += a;
  }
  return [allowed = std::move(allowed), expected = std::move(expected)](
             const std::string& flag, const std::string& value) {
    if (std::find(allowed.begin(), allowed.end(), value) == allowed.end()) {
      reject(flag, value, "expected " + expected);
    }
  };
}

OptionValidator v_each(char sep, OptionValidator inner) {
  return [sep, inner = std::move(inner)](const std::string& flag,
                                         const std::string& value) {
    if (value.empty()) return;
    std::size_t begin = 0;
    while (begin <= value.size()) {
      const auto end = value.find(sep, begin);
      const std::string token =
          trim(value.substr(begin, end == std::string::npos ? std::string::npos
                                                            : end - begin));
      if (token.empty()) reject(flag, value, "empty list element");
      inner(flag, token);
      if (end == std::string::npos) break;
      begin = end + 1;
    }
  };
}

OptionValidator v_dataset() {
  return [](const std::string& flag, const std::string& value) {
    static const std::vector<std::string> kNamed = {"higgs", "mnist", "cifar",
                                                    "e18", "blobs"};
    if (value.rfind("libsvm:", 0) == 0) {
      if (value.size() == 7) reject(flag, value, "libsvm: needs a path");
      return;
    }
    if (std::find(kNamed.begin(), kNamed.end(), value) == kNamed.end()) {
      reject(flag, value, "expected higgs|mnist|cifar|e18|blobs|libsvm:<path>");
    }
  };
}

OptionValidator v_device_list() {
  return [](const std::string& flag, const std::string& value) {
    if (value.empty()) return;  // unset alias
    std::size_t begin = 0;
    while (begin <= value.size()) {
      const auto end = value.find_first_of(",+", begin);
      const std::string token =
          trim(value.substr(begin, end == std::string::npos ? std::string::npos
                                                            : end - begin));
      if (token.empty()) reject(flag, value, "empty device entry");
      try {
        static_cast<void>(la::device_from_string(token));
      } catch (const std::exception& e) {
        reject(flag, value, e.what());
      }
      if (end == std::string::npos) break;
      begin = end + 1;
    }
  };
}

OptionValidator v_network() {
  return [](const std::string& flag, const std::string& value) {
    try {
      static_cast<void>(comm::network_from_string(value));
    } catch (const std::exception& e) {
      reject(flag, value, e.what());
    }
  };
}

OptionValidator v_straggler() {
  return [](const std::string& flag, const std::string& value) {
    if (value == "none") return;
    const auto colon = value.find(':');
    if (colon == std::string::npos) {
      reject(flag, value, "expected none or <rank>:<slowdown>");
    }
    const std::int64_t rank = parse_int(flag, value.substr(0, colon));
    const double slowdown = parse_double(flag, value.substr(colon + 1));
    if (rank < 0) reject(flag, value, "rank must be >= 0");
    if (slowdown < 1.0) reject(flag, value, "slowdown must be >= 1");
  };
}

OptionValidator v_partition() {
  return v_one_of({"contiguous", "strided", "weighted"});
}

OptionValidator v_fault() {
  return [](const std::string& flag, const std::string& value) {
    try {
      static_cast<void>(comm::FaultSpec::parse(value));
    } catch (const std::exception& e) {
      reject(flag, value, e.what());
    }
  };
}

OptionValidator v_kill() {
  return [](const std::string& flag, const std::string& value) {
    if (value == "none") return;
    const auto colon = value.find(':');
    if (colon == std::string::npos) {
      reject(flag, value, "expected none or <rank>:<epoch>");
    }
    const std::int64_t rank = parse_int(flag, value.substr(0, colon));
    const std::int64_t epoch = parse_int(flag, value.substr(colon + 1));
    if (rank < 0) reject(flag, value, "rank must be >= 0");
    if (epoch < 1) reject(flag, value, "epoch must be >= 1");
  };
}

OptionValidator v_solver() {
  return [](const std::string& flag, const std::string& value) {
    try {
      static_cast<void>(SolverRegistry::instance().info(value));
    } catch (const std::exception& e) {
      reject(flag, value, e.what());
    }
  };
}

OptionValidator v_arrival() {
  return [](const std::string& flag, const std::string& value) {
    try {
      static_cast<void>(serve::make_arrival(value));
    } catch (const std::exception& e) {
      reject(flag, value, e.what());
    }
  };
}

OptionValidator v_batch_policy() {
  return [](const std::string& flag, const std::string& value) {
    try {
      static_cast<void>(serve::make_batch_policy(value));
    } catch (const std::exception& e) {
      reject(flag, value, e.what());
    }
  };
}

OptionValidator v_byte_size() {
  return [](const std::string& flag, const std::string& value) {
    static_cast<void>(parse_byte_size(flag, value));
  };
}

std::size_t parse_byte_size(const std::string& flag,
                            const std::string& value) {
  if (value.empty()) reject(flag, value, "must not be empty");
  // stoull would silently wrap "-1" to 2^64−1.
  if (value.find('-') != std::string::npos) {
    reject(flag, value, "must be non-negative");
  }
  std::size_t multiplier = 1;
  std::string digits = value;
  switch (digits.back()) {
    case 'k': case 'K': multiplier = 1ull << 10; digits.pop_back(); break;
    case 'm': case 'M': multiplier = 1ull << 20; digits.pop_back(); break;
    case 'g': case 'G': multiplier = 1ull << 30; digits.pop_back(); break;
    default: break;
  }
  try {
    std::size_t pos = 0;
    const auto v = std::stoull(digits, &pos);
    NADMM_CHECK(pos == digits.size(), "trailing characters");
    NADMM_CHECK(v <= SIZE_MAX / multiplier, "size overflows");
    return v * multiplier;
  } catch (const std::exception&) {
    reject(flag, value, "expected bytes with optional k/m/g suffix");
  }
}

// ---------------------------------------------------------------------------
// Shared option tables.
// ---------------------------------------------------------------------------

const OptionSet& scenario_options() {
  static const OptionSet specs = [] {
    OptionSet s;
    s.add_string("dataset", "blobs",
                 "higgs|mnist|cifar|e18|blobs|libsvm:<path>", v_dataset());
    s.add_int("n-train", 8000, "training samples", v_int_min(1));
    s.add_int("n-test", 2000, "test samples", v_int_min(0));
    s.add_int("e18-features", 1400, "feature dim for e18/blobs", v_int_min(1));
    s.add_int("seed", 42, "dataset generator seed", v_int_min(0));
    s.add_int("workers", 8, "simulated cluster size", v_int_min(1));
    s.add_string("device", "p100",
                 "device model (p100|cpu|<gflops>[:<gbytes_per_s>]); a "
                 "','/'+'-separated list rates ranks individually",
                 v_device_list());
    s.add_string("devices", "",
                 "per-rank device list (alias for --device, matching the "
                 "sweep axis name)",
                 v_device_list());
    s.add_string("network", "ib100",
                 "network model (ib100|eth10|eth1|wan|ideal)", v_network());
    s.add_string("penalty", "sps", "ADMM penalty rule (fixed|rb|sps)",
                 v_one_of({"fixed", "rb", "sps"}));
    s.add_double("lambda", 1e-5, "l2 regularization", v_double_min(0.0));
    s.add_double("rho0", 1.0, "initial ADMM penalty rho_0",
                 v_double_min(0.0, /*inclusive=*/false));
    s.add_string("straggler", "none",
                 "inject a straggler: <rank>:<slowdown> (none disables)",
                 v_straggler());
    s.add_string("partition", "contiguous",
                 "shard plan across ranks: contiguous|strided|weighted "
                 "(weighted sizes shards by per-rank device gflops)",
                 v_partition());
    s.add_int("iterations", 100, "outer iterations (epochs)", v_int_min(1));
    s.add_int("cg-iterations", 10, "CG budget per Newton step", v_int_min(1));
    s.add_double("cg-tol", 1e-4, "CG relative tolerance",
                 v_double_min(0.0, /*inclusive=*/false));
    s.add_int("line-search", 10, "line-search iteration budget", v_int_min(1));
    s.add_double("objective-target", 0.0,
                 "stop once F(z) <= target (<= 0 disables)");
    s.add_int("staleness", 4, "async-admm bounded-staleness (rounds)",
              v_int_min(1));
    s.add_int("sync-every", 4, "stale-sync-admm barrier period (rounds)",
              v_int_min(1));
    s.add_string("fault", "none",
                 "async-engine link faults: none or "
                 "drop:<p>[,dup:<p>][,reorder:<p>][,corrupt:<p>]",
                 v_fault());
    s.add_string("kill", "none",
                 "kill a rank after an epoch and rejoin it from the last "
                 "checkpoint: <rank>:<epoch> (none disables; needs "
                 "--checkpoint-every > 0)",
                 v_kill());
    s.add_int("checkpoint-every", 0,
              "coordinator checkpoint period in applied updates (0 = off)",
              v_int_min(0));
    s.add_int("sgd-batch", 128, "sync-sgd minibatch size", v_int_min(1));
    s.add_double("sgd-step", 0.1, "sync-sgd step size",
                 v_double_min(0.0, /*inclusive=*/false));
    s.add_int("dane-epochs", 10, "InexactDANE/AIDE epoch cap", v_int_min(1));
    s.add_int("svrg-outer", 10, "DANE inner SVRG budget", v_int_min(1));
    s.add_double("fo-step", 0.0,
                 "single-node first-order step size (0 = rule default)",
                 v_double_min(0.0));
    s.add_double("gradient-tol", -1.0,
                 "single-node gradient-norm stop (< 0 = solver default)");
    s.add_int("omp-threads", 0, "OpenMP threads per rank (0 = auto)",
              v_int_min(0));
    return s;
  }();
  return specs;
}

const OptionSet& serving_options() {
  static const OptionSet specs = [] {
    OptionSet s;
    s.add_string("arrival", "poisson:1000",
                 "arrival model: poisson[:<rate>] | "
                 "diurnal[:<mean>[:<amp>[:<period>]]] | "
                 "bursty[:<base>[:<burst>[:<period>[:<duty>]]]]",
                 v_arrival());
    s.add_string("batch", "immediate",
                 "batch policy: immediate | size:<B> | deadline:<B>:<seconds>",
                 v_batch_policy());
    s.add_int("requests", 10000, "synthetic requests to serve", v_int_min(0));
    s.add_double("dispatch-overhead", 1e-4,
                 "fixed per-dispatch cost in seconds (kernel launch + result "
                 "framing); the term batching amortizes",
                 v_double_min(0.0));
    return s;
  }();
  return specs;
}

// ---------------------------------------------------------------------------
// Solver-knob catalog.
// ---------------------------------------------------------------------------

KnobInfo describe_knob(const std::string& name) {
  const OptionSpec* spec = scenario_options().find(name);
  if (spec == nullptr) spec = serving_options().find(name);
  NADMM_CHECK(spec != nullptr,
              "solver knob '" + name +
                  "' is not a registered CLI option — add it to "
                  "runner::scenario_options()");
  return {spec->name, to_string(spec->type), spec->default_value, spec->help};
}

}  // namespace nadmm::runner
