#include "runner/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "runner/registry.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace nadmm::runner {

data::DatasetKey dataset_key(const ExperimentConfig& config) {
  data::DatasetKey key;
  key.source = config.dataset;
  key.n_train = config.n_train;
  key.n_test = config.n_test;
  // File-backed sources take their dimension (and content) from the
  // file, so the generator knobs must not split their cache entries.
  const bool file_backed = config.dataset.rfind("libsvm:", 0) == 0;
  key.features = file_backed ? 0 : config.e18_features;
  key.seed = file_backed ? 0 : config.seed;
  return key;
}

data::TrainTest make_data(const ExperimentConfig& config) {
  return data::generate_dataset(dataset_key(config));
}

namespace {

/// Split a per-rank device list on ',' or '+' (equivalent; sweep axis
/// values must use '+' because commas separate axis entries).
std::vector<std::string> split_device_specs(const std::string& list) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : list) {
    if (c == ',' || c == '+') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else if (c != ' ') {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

std::vector<la::DeviceModel> cluster_devices(const ExperimentConfig& config) {
  NADMM_CHECK(config.workers >= 1, "cluster needs at least one rank");
  const auto specs = split_device_specs(config.device);
  NADMM_CHECK(!specs.empty(), "device spec must not be empty");
  std::vector<la::DeviceModel> devices;
  devices.reserve(static_cast<std::size_t>(config.workers));
  for (int r = 0; r < config.workers; ++r) {
    devices.push_back(la::device_from_string(
        specs[static_cast<std::size_t>(r) % specs.size()]));
  }
  if (!config.straggler.empty() && config.straggler != "none") {
    const auto colon = config.straggler.find(':');
    NADMM_CHECK(colon != std::string::npos,
                "straggler spec must be 'none' or '<rank>:<slowdown>', got '" +
                    config.straggler + "'");
    char* end = nullptr;
    const long rank = std::strtol(config.straggler.c_str(), &end, 10);
    NADMM_CHECK(end == config.straggler.c_str() + colon && rank >= 0 &&
                    rank < config.workers,
                "straggler rank must be an integer in [0, workers), got '" +
                    config.straggler + "'");
    const double slowdown =
        std::strtod(config.straggler.c_str() + colon + 1, &end);
    NADMM_CHECK(end != nullptr && *end == '\0' && slowdown > 0.0,
                "straggler slowdown must be a positive number, got '" +
                    config.straggler + "'");
    la::DeviceModel& d = devices[static_cast<std::size_t>(rank)];
    d.gflops /= slowdown;
    if (d.gbytes_per_s > 0.0) d.gbytes_per_s /= slowdown;
    d.name += "/x" + config.straggler.substr(colon + 1);
  }
  return devices;
}

comm::SimCluster make_cluster(const ExperimentConfig& config) {
  return comm::SimCluster(cluster_devices(config),
                          comm::network_from_string(config.network),
                          config.omp_threads);
}

data::ShardPlan shard_plan(const ExperimentConfig& config) {
  data::ShardPlan plan;
  plan.mode = data::partition_mode_from_string(config.partition);
  plan.parts = config.workers;
  if (plan.mode == data::PartitionMode::kWeighted) {
    // Effective per-rank speed (straggler slowdown included): a 4x-slowed
    // rank gets a quarter of an equal rank's rows.
    for (const la::DeviceModel& d : cluster_devices(config)) {
      plan.weights.push_back(d.gflops);
    }
  }
  return plan;
}

data::ShardedDataset make_sharded_data(const ExperimentConfig& config,
                                       const data::TrainTest& tt) {
  return data::make_sharded(tt.train, &tt.test, shard_plan(config));
}

core::NewtonAdmmOptions admm_options(const ExperimentConfig& config) {
  core::NewtonAdmmOptions o;
  o.max_iterations = config.iterations;
  o.lambda = config.lambda;
  o.cg.max_iterations = config.cg_iterations;
  o.cg.rel_tol = config.cg_tol;
  o.line_search.max_iterations = config.line_search_iterations;
  o.penalty.rule = core::penalty_rule_from_string(config.penalty);
  o.penalty.rho0 = config.rho0;
  o.local_newton_steps = config.local_newton_steps;
  o.objective_target = config.objective_target;
  o.evaluate_accuracy = config.evaluate_accuracy;
  return o;
}

solvers::AsyncAdmmOptions async_options(const ExperimentConfig& config,
                                        bool stale_sync) {
  solvers::AsyncAdmmOptions o;
  o.admm = admm_options(config);
  o.staleness = config.staleness;
  o.sync_every = stale_sync ? std::max(1, config.sync_every) : 0;
  o.fault = config.fault.empty() ? "none" : config.fault;
  o.seed = config.seed;
  o.checkpoint_every = config.checkpoint_every;
  if (!config.kill.empty() && config.kill != "none") {
    const auto colon = config.kill.find(':');
    NADMM_CHECK(colon != std::string::npos,
                "kill spec must be 'none' or '<rank>:<epoch>', got '" +
                    config.kill + "'");
    char* end = nullptr;
    const long rank = std::strtol(config.kill.c_str(), &end, 10);
    NADMM_CHECK(end == config.kill.c_str() + colon && rank >= 0,
                "kill rank must be a non-negative integer, got '" +
                    config.kill + "'");
    const long epoch = std::strtol(config.kill.c_str() + colon + 1, &end, 10);
    NADMM_CHECK(end != nullptr && *end == '\0' && epoch >= 1,
                "kill epoch must be an integer >= 1, got '" + config.kill +
                    "'");
    o.kill_rank = static_cast<int>(rank);
    o.kill_epoch = static_cast<int>(epoch);
  }
  return o;
}

baselines::GiantOptions giant_options(const ExperimentConfig& config) {
  baselines::GiantOptions o;
  o.max_iterations = config.iterations;
  o.lambda = config.lambda;
  o.cg.max_iterations = config.cg_iterations;
  o.cg.rel_tol = config.cg_tol;
  o.line_search_steps = config.line_search_iterations;
  o.objective_target = config.objective_target;
  o.evaluate_accuracy = config.evaluate_accuracy;
  return o;
}

baselines::SyncSgdOptions sgd_options(const ExperimentConfig& config) {
  baselines::SyncSgdOptions o;
  o.epochs = config.iterations;
  o.lambda = config.lambda;
  o.batch_size = config.sgd_batch;
  o.step_size = config.sgd_step;
  o.evaluate_accuracy = config.evaluate_accuracy;
  return o;
}

baselines::DaneOptions dane_options(const ExperimentConfig& config) {
  baselines::DaneOptions o;
  o.max_iterations = std::min(config.iterations, config.dane_epochs);
  o.lambda = config.lambda;
  // Scaled-down inner budget: the real setting (100 outer × 2n inner) is
  // what makes DANE epochs ~10⁴× slower; even this reduced budget leaves
  // them orders of magnitude slower than a Newton-CG epoch.
  o.svrg.max_outer = config.svrg_outer;
  o.svrg.update_frequency = 0;  // 2·n_local
  o.svrg.step_size = 1e-4;
  o.evaluate_accuracy = config.evaluate_accuracy;
  return o;
}

baselines::DiscoOptions disco_options(const ExperimentConfig& config) {
  baselines::DiscoOptions o;
  o.max_iterations = config.iterations;
  o.lambda = config.lambda;
  o.cg.max_iterations = config.cg_iterations;
  o.cg.rel_tol = config.cg_tol;
  o.evaluate_accuracy = config.evaluate_accuracy;
  return o;
}

data::ShardedDataset shard_for_solver(const std::string& solver,
                                      const data::Dataset& train,
                                      const data::Dataset* test,
                                      const ExperimentConfig& config) {
  // Single-node solvers run on the full splits; a one-part plan keeps
  // the uniform factory signature without re-slicing anything.
  const auto& info = SolverRegistry::instance().info(solver);
  const data::ShardPlan plan = info.kind == SolverKind::kSingleNode
                                   ? data::ShardPlan{}
                                   : shard_plan(config);
  return data::make_sharded(train, test, plan);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult run_solver(const std::string& solver,
                           comm::SimCluster& cluster,
                           const data::Dataset& train,
                           const data::Dataset* test,
                           const ExperimentConfig& config) {
  return run_solver(solver, cluster,
                    shard_for_solver(solver, train, test, config), config);
}
#pragma GCC diagnostic pop

core::RunResult run_solver(const std::string& solver,
                           comm::SimCluster& cluster,
                           const data::ShardedDataset& data,
                           const ExperimentConfig& config) {
  return SolverRegistry::instance().run(solver, cluster, data, config);
}

void write_trace_csv(const core::RunResult& result, const std::string& path) {
  CsvWriter csv(path, {"iteration", "objective", "test_accuracy",
                       "sim_seconds", "wall_seconds", "epoch_sim_seconds",
                       "comm_sim_seconds", "primal_residual", "dual_residual",
                       "rho_mean"});
  for (const auto& it : result.trace) {
    csv.add_row(std::vector<double>{
        static_cast<double>(it.iteration), it.objective, it.test_accuracy,
        it.sim_seconds, it.wall_seconds, it.epoch_sim_seconds,
        it.comm_sim_seconds, it.primal_residual, it.dual_residual,
        it.rho_mean});
  }
}

void print_trace_summary(const core::RunResult& result, int max_rows) {
  std::printf("solver=%s iterations=%d final_objective=%.6f "
              "final_accuracy=%.4f avg_epoch=%.3f ms total_sim=%.3f s\n",
              result.solver.c_str(), result.iterations, result.final_objective,
              result.final_test_accuracy, result.avg_epoch_sim_seconds * 1e3,
              result.total_sim_seconds);
  if (result.trace.empty()) return;
  Table t({"iter", "objective", "test_acc", "sim_s", "epoch_ms"});
  const std::size_t n = result.trace.size();
  const std::size_t stride =
      std::max<std::size_t>(1, n / static_cast<std::size_t>(std::max(1, max_rows)));
  for (std::size_t i = 0; i < n; i += stride) {
    const auto& it = result.trace[i];
    t.add_row({Table::fmt_int(it.iteration), Table::fmt(it.objective, 6),
               Table::fmt(it.test_accuracy, 4), Table::fmt(it.sim_seconds, 4),
               Table::fmt(it.epoch_sim_seconds * 1e3, 3)});
  }
  const auto& last = result.trace.back();
  if ((n - 1) % stride != 0) {
    t.add_row({Table::fmt_int(last.iteration), Table::fmt(last.objective, 6),
               Table::fmt(last.test_accuracy, 4),
               Table::fmt(last.sim_seconds, 4),
               Table::fmt(last.epoch_sim_seconds * 1e3, 3)});
  }
  t.print();
}

}  // namespace nadmm::runner
