// Compute-device model.
//
// The paper's per-node compute runs on Tesla P100 GPUs. We model a device
// as a sustained GF/s rating: the simulated clock converts the flops a
// rank executed (counted by the kernels in this library) into simulated
// device-seconds. Presets let benches compare "P100-like" against
// CPU-like ratings, and keep epoch-time figures machine-independent.
#pragma once

#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace nadmm::la {

/// A compute device with a sustained throughput rating.
struct DeviceModel {
  std::string name;
  double gflops;  ///< sustained double-precision GF/s

  /// Simulated seconds to execute `flop_count` operations.
  [[nodiscard]] double seconds_for_flops(std::uint64_t flop_count) const {
    NADMM_CHECK(gflops > 0.0, "device gflops must be positive");
    return static_cast<double>(flop_count) / (gflops * 1e9);
  }
};

/// Tesla P100-like: ~4.7 TF/s peak FP64; we rate sustained GEMM-bound
/// throughput at 3 TF/s, matching the paper's hardware class.
inline DeviceModel p100_device() { return {"p100", 3000.0}; }

/// A contemporary server CPU socket (~50 GF/s sustained FP64).
inline DeviceModel cpu_device() { return {"cpu", 50.0}; }

/// Look up a preset by name ("p100", "cpu") or parse a number as GF/s.
DeviceModel device_from_string(const std::string& spec);

}  // namespace nadmm::la
