// Compute-device model.
//
// The paper's per-node compute runs on Tesla P100 GPUs. We model a device
// as a sustained GF/s rating plus a sustained memory bandwidth: the
// simulated clock converts the flops and bytes a rank executed (counted
// by the kernels in this library) into simulated device-seconds under a
// roofline — an interval costs max(flops/flop_rate, bytes/bandwidth), so
// low-arithmetic-intensity work (SpMM over E18-like shards, tall-skinny
// GEMMs) is priced by the memory system, not by peak flops. Presets let
// benches compare "P100-like" against CPU-like ratings, and keep
// epoch-time figures machine-independent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace nadmm::la {

/// A compute device with sustained throughput and bandwidth ratings.
struct DeviceModel {
  std::string name;
  double gflops;          ///< sustained double-precision GF/s
  double gbytes_per_s{};  ///< sustained memory bandwidth in GB/s;
                          ///< <= 0 disables the bandwidth term
                          ///< (flop-only pricing, the pre-roofline model)

  /// Simulated seconds to execute `flop_count` operations (flop term only).
  [[nodiscard]] double seconds_for_flops(std::uint64_t flop_count) const {
    NADMM_CHECK(gflops > 0.0, "device gflops must be positive");
    return static_cast<double>(flop_count) / (gflops * 1e9);
  }

  /// Roofline seconds for an interval that executed `flop_count` flops
  /// and moved `byte_count` bytes: whichever of the flop pipe and the
  /// memory system is slower bounds the interval.
  [[nodiscard]] double seconds_for(std::uint64_t flop_count,
                                   std::uint64_t byte_count) const {
    const double flop_s = seconds_for_flops(flop_count);
    if (gbytes_per_s <= 0.0) return flop_s;
    const double byte_s =
        static_cast<double>(byte_count) / (gbytes_per_s * 1e9);
    return std::max(flop_s, byte_s);
  }

  /// Machine balance in flops/byte: kernels below this arithmetic
  /// intensity are bandwidth-bound on this device. 0 when no bandwidth
  /// rating is set.
  [[nodiscard]] double balance() const {
    return gbytes_per_s > 0.0 ? gflops / gbytes_per_s : 0.0;
  }
};

/// Tesla P100-like: ~4.7 TF/s peak FP64, 732 GB/s peak HBM2; we rate
/// sustained GEMM-bound throughput at 3 TF/s and sustained streaming
/// bandwidth at 550 GB/s, matching the paper's hardware class.
inline DeviceModel p100_device() { return {"p100", 3000.0, 550.0}; }

/// A contemporary server CPU socket (~50 GF/s sustained FP64, ~25 GB/s
/// sustained DRAM bandwidth).
inline DeviceModel cpu_device() { return {"cpu", 50.0, 25.0}; }

/// Look up a preset by name ("p100", "cpu"), parse a number as GF/s
/// (flop-only pricing), or parse "<gflops>:<gbytes_per_s>" for a custom
/// roofline device.
DeviceModel device_from_string(const std::string& spec);

}  // namespace nadmm::la
