#pragma once

/// Compile-time SIMD dispatch for the kernel engine.
///
/// One abstraction, four backends, selected once at compile time:
///
///   NADMM_FORCE_SCALAR   -> Scalar       (1 lane, plain double)
///   __AVX512F__          -> Avx512       (8 lanes, __m512d)
///   __AVX2__             -> Avx2         (4 lanes, __m256d)
///   <experimental/simd>  -> StdSimd      (native_simd<double>)
///   otherwise            -> Scalar
///
/// The contract every backend obeys: a lane is an *independent output
/// element*. Kernels vectorize only across independent outputs (the
/// column/class dimension), never across a reduction, and no backend
/// ever fuses a multiply-add — `mul` then `add` are separate rounding
/// steps, exactly like the scalar engine. Together those two rules make
/// every backend bit-identical to the scalar path per element, which is
/// what keeps the committed sweep/figure artifacts byte-stable while
/// the instruction mix underneath changes. (The build also pins
/// `-ffp-contract=off` so the compiler cannot re-fuse what we split.)
///
/// Helpers at the bottom (`scale`, `add_inplace`, `combine`, `axpy`)
/// are the shared elementwise loops: vector body plus a scalar tail
/// whose per-element expression trees match the vector lanes exactly.

#include <cstddef>

#if !defined(NADMM_FORCE_SCALAR)
#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#define NADMM_SIMD_X86 1
#elif defined(__has_include)
#if __has_include(<experimental/simd>)
#include <experimental/simd>
#define NADMM_SIMD_STD 1
#endif
#endif
#endif

namespace nadmm::la::simd {

/// 1-lane fallback; also the reference semantics every other backend
/// must reproduce bitwise.
struct Scalar {
  static constexpr std::size_t width = 1;
  double v;
  static Scalar load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static Scalar broadcast(double x) { return {x}; }
  static Scalar zero() { return {0.0}; }
  friend Scalar operator+(Scalar a, Scalar b) { return {a.v + b.v}; }
  friend Scalar operator*(Scalar a, Scalar b) { return {a.v * b.v}; }
};

#if defined(NADMM_SIMD_X86) && defined(__AVX2__) && !defined(__AVX512F__)
struct Avx2 {
  static constexpr std::size_t width = 4;
  __m256d v;
  static Avx2 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static Avx2 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2 zero() { return {_mm256_setzero_pd()}; }
  friend Avx2 operator+(Avx2 a, Avx2 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Avx2 operator*(Avx2 a, Avx2 b) { return {_mm256_mul_pd(a.v, b.v)}; }
};
using Active = Avx2;
inline constexpr const char* kIsaName = "avx2";
#elif defined(NADMM_SIMD_X86) && defined(__AVX512F__)
struct Avx512 {
  static constexpr std::size_t width = 8;
  __m512d v;
  static Avx512 load(const double* p) { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static Avx512 broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Avx512 zero() { return {_mm512_setzero_pd()}; }
  friend Avx512 operator+(Avx512 a, Avx512 b) {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend Avx512 operator*(Avx512 a, Avx512 b) {
    return {_mm512_mul_pd(a.v, b.v)};
  }
};
using Active = Avx512;
inline constexpr const char* kIsaName = "avx512";
#elif defined(NADMM_SIMD_STD)
/// Portable lane-parallel backend on std::experimental::simd. On a
/// baseline x86-64 build this is 2 SSE2 lanes; on AArch64 it picks up
/// NEON without any code here changing.
struct StdSimd {
  using vec = std::experimental::native_simd<double>;
  static constexpr std::size_t width = vec::size();
  vec v;
  static StdSimd load(const double* p) {
    return {vec(p, std::experimental::element_aligned)};
  }
  void store(double* p) const {
    v.copy_to(p, std::experimental::element_aligned);
  }
  static StdSimd broadcast(double x) { return {vec(x)}; }
  static StdSimd zero() { return {vec(0.0)}; }
  friend StdSimd operator+(StdSimd a, StdSimd b) { return {a.v + b.v}; }
  friend StdSimd operator*(StdSimd a, StdSimd b) { return {a.v * b.v}; }
};
using Active = StdSimd;
inline constexpr const char* kIsaName = "stdsimd";
#else
using Active = Scalar;
inline constexpr const char* kIsaName = "scalar";
#endif

/// Hint the cache that `p` will be read soon (read, low temporal
/// locality is wrong here — gathered rows are reused across classes, so
/// default locality). No-op where unsupported.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// ---------------------------------------------------------------------------
// Shared elementwise loops. Each runs the vector body over full lanes and a
// scalar tail; both use the same per-element expression tree, so the result
// is bit-identical to a pure scalar loop for every V.

/// p[i] *= s
template <class V>
inline void scale(double s, double* p, std::size_t n) {
  const V sv = V::broadcast(s);
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    (V::load(p + i) * sv).store(p + i);
  }
  for (; i < n; ++i) p[i] *= s;
}

/// acc[i] += src[i]
template <class V>
inline void add_inplace(double* acc, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    (V::load(acc + i) + V::load(src + i)).store(acc + i);
  }
  for (; i < n; ++i) acc[i] += src[i];
}

/// y[i] += a * x[i]
template <class V>
inline void axpy(double a, const double* x, double* y, std::size_t n) {
  const V av = V::broadcast(a);
  std::size_t i = 0;
  for (; i + V::width <= n; i += V::width) {
    (V::load(y + i) + av * V::load(x + i)).store(y + i);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

/// The engine's epilogue: out = beta * out + alpha * acc, with the same
/// beta == 0 / beta == 1 special cases (and expression trees) the scalar
/// fold has always used.
template <class V>
inline void combine(double alpha, double beta, double* out, const double* acc,
                    std::size_t n) {
  const V av = V::broadcast(alpha);
  std::size_t i = 0;
  if (beta == 0.0) {
    for (; i + V::width <= n; i += V::width) {
      (av * V::load(acc + i)).store(out + i);
    }
    for (; i < n; ++i) out[i] = alpha * acc[i];
  } else if (beta == 1.0) {
    for (; i + V::width <= n; i += V::width) {
      (V::load(out + i) + av * V::load(acc + i)).store(out + i);
    }
    for (; i < n; ++i) out[i] += alpha * acc[i];
  } else {
    const V bv = V::broadcast(beta);
    for (; i + V::width <= n; i += V::width) {
      (bv * V::load(out + i) + av * V::load(acc + i)).store(out + i);
    }
    for (; i < n; ++i) out[i] = beta * out[i] + alpha * acc[i];
  }
}

}  // namespace nadmm::la::simd
