// Floating-point-operation and bytes-moved accounting.
//
// Every kernel in nadmm::la credits its flop count and its compulsory
// memory traffic (operands read once, outputs written once) to
// thread-local counters. The simulated-cluster clock (src/comm/clock.hpp)
// polls both to convert local compute into simulated device-seconds under
// a roofline model — flop-rate-bound or bandwidth-bound, whichever is
// slower — so sparse and tall-skinny products are no longer flop-priced
// (see DESIGN.md §2 and la/device.hpp).
#pragma once

#include <cstdint>

namespace nadmm::flops {

namespace detail {
inline thread_local std::uint64_t counter = 0;
inline thread_local std::uint64_t byte_counter = 0;
}  // namespace detail

/// Credit `n` floating-point operations to the calling thread.
inline void add(std::uint64_t n) { detail::counter += n; }

/// Credit `n` bytes of compulsory memory traffic to the calling thread.
inline void add_bytes(std::uint64_t n) { detail::byte_counter += n; }

/// Output passes under the compulsory-traffic model shared by every
/// kernel wrapper: outputs are written once, and read once more only
/// when beta != 0 forces a read-modify-write.
inline std::uint64_t output_passes(double beta) { return beta != 0.0 ? 2 : 1; }

/// Total flops credited to the calling thread since the last reset.
inline std::uint64_t read() { return detail::counter; }

/// Total bytes credited to the calling thread since the last reset.
inline std::uint64_t read_bytes() { return detail::byte_counter; }

/// Reset the calling thread's flop AND byte counters to zero.
inline void reset() {
  detail::counter = 0;
  detail::byte_counter = 0;
}

/// RAII helper: measures the flops and bytes executed on this thread
/// within a scope.
class Scope {
 public:
  Scope() : start_(read()), start_bytes_(read_bytes()) {}
  [[nodiscard]] std::uint64_t elapsed() const { return read() - start_; }
  [[nodiscard]] std::uint64_t elapsed_bytes() const {
    return read_bytes() - start_bytes_;
  }

 private:
  std::uint64_t start_;
  std::uint64_t start_bytes_;
};

}  // namespace nadmm::flops
