// Floating-point-operation accounting.
//
// Every kernel in nadmm::la credits its flop count to a thread-local
// counter. The simulated-cluster clock (src/comm/clock.hpp) polls this
// counter to convert local compute into simulated device-seconds under a
// configurable GF/s rating — this is how we model "the GPU did the GEMMs"
// without a GPU (see DESIGN.md §2).
#pragma once

#include <cstdint>

namespace nadmm::flops {

namespace detail {
inline thread_local std::uint64_t counter = 0;
}

/// Credit `n` floating-point operations to the calling thread.
inline void add(std::uint64_t n) { detail::counter += n; }

/// Total flops credited to the calling thread since the last reset.
inline std::uint64_t read() { return detail::counter; }

/// Reset the calling thread's counter to zero.
inline void reset() { detail::counter = 0; }

/// RAII helper: measures the flops executed on this thread within a scope.
class Scope {
 public:
  Scope() : start_(read()) {}
  [[nodiscard]] std::uint64_t elapsed() const { return read() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace nadmm::flops
