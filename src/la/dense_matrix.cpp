#include "la/dense_matrix.hpp"

#include <cmath>

#include "la/flops.hpp"
#include "la/kernels.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols,
                         std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  NADMM_CHECK(data_.size() == rows * cols,
              "DenseMatrix: value buffer size does not match rows*cols");
}

void DenseMatrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double DenseMatrix::frobenius_norm() const { return nrm2(data_); }

DenseView DenseMatrix::view(std::size_t begin, std::size_t end) const {
  NADMM_CHECK(begin <= end && end <= rows_, "DenseMatrix::view: bad range");
  return {data_.data() + begin * cols_, end - begin, cols_};
}

// Byte accounting below follows the compulsory-traffic model of
// flops::output_passes: operands read once, outputs written once (plus
// a read when beta forces RMW). Cache reuse beyond that is the kernel's
// job; the roofline prices the unavoidable traffic.
using flops::output_passes;

void gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  // Spans close after the flop credit so the trace records the deltas.
  TELEM_SPAN("kernel", "gemm_nn");
  kernels::gemm_nn(alpha, a, b, beta, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  flops::add(2 * m * k * n);
  flops::add_bytes(8 * (m * k + k * n + output_passes(beta) * m * n));
}

void gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  TELEM_SPAN("kernel", "gemm_tn");
  kernels::gemm_tn(alpha, a, b, beta, c);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  flops::add(2 * k * m * n);
  flops::add_bytes(8 * (k * m + k * n + output_passes(beta) * m * n));
}

void gemv(double alpha, DenseView a, std::span<const double> x,
          double beta, std::span<double> y) {
  NADMM_CHECK(a.cols() == x.size(), "gemv: x size mismatch");
  NADMM_CHECK(a.rows() == y.size(), "gemv: y size mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const double* pa = a.data().data();
  [[maybe_unused]] const bool parallel = 2 * m * k >= kernels::kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    const double* arow = pa + static_cast<std::size_t>(i) * k;
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) acc += arow[j] * x[j];
    y[i] = alpha * acc + beta * y[i];
  }
  flops::add(2 * m * k);
  flops::add_bytes(8 * (m * k + k + output_passes(beta) * m));
}

void gemv_t(double alpha, DenseView a, std::span<const double> x,
            double beta, std::span<double> y) {
  TELEM_SPAN("kernel", "gemv_t");
  kernels::gemv_t(alpha, a, x, beta, y);
  const std::size_t k = a.rows(), m = a.cols();
  flops::add(2 * m * k);
  flops::add_bytes(8 * (k * m + k + output_passes(beta) * m));
}

}  // namespace nadmm::la
