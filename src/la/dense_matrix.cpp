#include "la/dense_matrix.hpp"

#include <cmath>

#include "la/flops.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols,
                         std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  NADMM_CHECK(data_.size() == rows * cols,
              "DenseMatrix: value buffer size does not match rows*cols");
}

void DenseMatrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double DenseMatrix::frobenius_norm() const { return nrm2(data_); }

namespace {
// Panel width for the k-dimension blocking in gemm_nn; keeps the B panel
// resident in L1/L2 while streaming rows of A.
constexpr std::size_t kBlockK = 256;
// Below this many flops an OpenMP region costs more than it saves; the
// `if` clauses keep small products (SGD minibatches, SVRG inner steps)
// on the calling thread.
constexpr std::size_t kParallelFlops = 1 << 17;
}  // namespace

void gemm_nn(double alpha, const DenseMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  NADMM_CHECK(a.cols() == b.rows(), "gemm_nn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm_nn: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();

  const std::ptrdiff_t mm = static_cast<std::ptrdiff_t>(m);
  [[maybe_unused]] const bool parallel = 2 * m * k * n >= kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < mm; ++i) {
    double* crow = pc + static_cast<std::size_t>(i) * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const double* arow = pa + static_cast<std::size_t>(i) * k;
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k, k0 + kBlockK);
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double av = alpha * arow[kk];
        if (av == 0.0) continue;
        const double* brow = pb + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
  flops::add(2 * m * k * n);
}

void gemm_tn(double alpha, const DenseMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  NADMM_CHECK(a.rows() == b.rows(), "gemm_tn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
              "gemm_tn: output shape mismatch");
  const std::size_t k = a.rows();  // samples
  const std::size_t m = a.cols();  // features
  const std::size_t n = b.cols();  // classes
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();

  if (beta == 0.0) {
    std::fill(c.data().begin(), c.data().end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, c.data());
  }

  // C[j, t] += alpha * sum_i A[i, j] * B[i, t].
  // Parallelize over sample blocks with per-thread accumulators: streaming
  // access to both A and B, and m*n accumulators stay modest (<= a few MB).
  [[maybe_unused]] const bool parallel = 2 * k * m * n >= kParallelFlops;
#pragma omp parallel if (parallel)
  {
    std::vector<double> local(m * n, 0.0);
#pragma omp for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(k); ++i) {
      const double* arow = pa + static_cast<std::size_t>(i) * m;
      const double* brow = pb + static_cast<std::size_t>(i) * n;
      for (std::size_t j = 0; j < m; ++j) {
        const double av = arow[j];
        if (av == 0.0) continue;
        double* lrow = local.data() + j * n;
        for (std::size_t t = 0; t < n; ++t) lrow[t] += av * brow[t];
      }
    }
#pragma omp critical(nadmm_gemm_tn_reduce)
    {
      for (std::size_t e = 0; e < local.size(); ++e) pc[e] += alpha * local[e];
    }
  }
  flops::add(2 * k * m * n);
}

void gemv(double alpha, const DenseMatrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  NADMM_CHECK(a.cols() == x.size(), "gemv: x size mismatch");
  NADMM_CHECK(a.rows() == y.size(), "gemv: y size mismatch");
  const std::size_t m = a.rows(), k = a.cols();
  const double* pa = a.data().data();
  [[maybe_unused]] const bool parallel = 2 * m * k >= kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    const double* arow = pa + static_cast<std::size_t>(i) * k;
    double acc = 0.0;
    for (std::size_t j = 0; j < k; ++j) acc += arow[j] * x[j];
    y[i] = alpha * acc + beta * y[i];
  }
  flops::add(2 * m * k);
}

void gemv_t(double alpha, const DenseMatrix& a, std::span<const double> x,
            double beta, std::span<double> y) {
  NADMM_CHECK(a.rows() == x.size(), "gemv_t: x size mismatch");
  NADMM_CHECK(a.cols() == y.size(), "gemv_t: y size mismatch");
  const std::size_t k = a.rows(), m = a.cols();
  const double* pa = a.data().data();
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, y);
  }
  [[maybe_unused]] const bool parallel = 2 * m * k >= kParallelFlops;
#pragma omp parallel if (parallel)
  {
    std::vector<double> local(m, 0.0);
#pragma omp for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(k); ++i) {
      const double xv = x[i];
      if (xv == 0.0) continue;
      const double* arow = pa + static_cast<std::size_t>(i) * m;
      for (std::size_t j = 0; j < m; ++j) local[j] += xv * arow[j];
    }
#pragma omp critical(nadmm_gemv_t_reduce)
    {
      for (std::size_t j = 0; j < m; ++j) y[j] += alpha * local[j];
    }
  }
  flops::add(2 * m * k);
}

}  // namespace nadmm::la
