#include "la/kernels.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cmath>
#include <new>
#include <vector>

#include "la/simd.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::la::kernels {

namespace {

// Microkernel tile: MR rows of A against an NR-wide packed strip of B.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;

// How many CSC entries ahead of the gather cursor to prefetch the B row
// for. The gather's access pattern (row_idx-indexed rows of B) is the one
// the hardware prefetcher cannot predict; 8 entries ≈ one column's worth
// on the E18 shapes, far enough to cover a memory latency at the gather's
// per-entry cost.
constexpr std::int64_t kPrefetchAhead = 8;

int max_team(bool parallel) {
#ifdef _OPENMP
  return parallel ? std::max(1, omp_get_max_threads()) : 1;
#else
  static_cast<void>(parallel);
  return 1;
#endif
}

int team_size() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

struct Range {
  std::size_t lo;
  std::size_t hi;
};

/// Static slice t of `count` elements among `team` threads. Depends only
/// on (count, t, team) — this is what makes both reduction phases
/// deterministic for a fixed thread count.
Range slice(std::size_t count, int t, int team) {
  const auto tt = static_cast<std::size_t>(t);
  const auto tm = static_cast<std::size_t>(team);
  return {count * tt / tm, count * (tt + 1) / tm};
}

/// Fold phase 2 of a two-phase reduction: partials 1..team−1 are added
/// into partial 0 (fixed thread order), then the slice [lo, hi) of the
/// output is combined as C = beta·C + alpha·acc. Every element of the
/// output is written by exactly one thread.
template <class V>
void fold_partials(double alpha, double beta, double* out, double* ws,
                   std::size_t stride, int team, std::size_t lo,
                   std::size_t hi) {
  double* acc = ws;
  for (int r = 1; r < team; ++r) {
    const double* src = ws + static_cast<std::size_t>(r) * stride;
    simd::add_inplace<V>(acc + lo, src + lo, hi - lo);
  }
  simd::combine<V>(alpha, beta, out + lo, acc + lo, hi - lo);
}

/// In-place C = beta·C for the degenerate k = 0 case.
void scale_output(double beta, std::span<double> c) {
  if (beta == 0.0) {
    std::fill(c.begin(), c.end(), 0.0);
  } else if (beta != 1.0) {
    for (double& v : c) v *= beta;
  }
}

/// Grow-only, 64-byte-aligned, *uninitialized* per-thread buffer backing
/// the packed panels and reduction workspaces. The kernels run every CG
/// iteration, so steady-state calls must never touch the allocator; the
/// allocation deliberately leaves pages untouched, which is the NUMA
/// first-touch half of the contract: each team thread zero-fills only
/// its own partial slice inside the parallel region, so on multi-socket
/// hosts a partial's pages land on the node of the thread that folds
/// them rather than wherever the calling thread happened to run.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer() { release(); }

  double* ensure(std::size_t elems) {
    if (cap_ < elems) {
      release();
      data_ = static_cast<double*>(
          ::operator new(elems * sizeof(double), std::align_val_t{64}));
      cap_ = elems;
    }
    return data_;
  }

 private:
  void release() {
    if (data_ != nullptr) ::operator delete(data_, std::align_val_t{64});
    data_ = nullptr;
    cap_ = 0;
  }

  double* data_ = nullptr;
  std::size_t cap_ = 0;
};

// ------------------------------------------------------------- gemm_nn

/// Pack B (k×n row-major) into zero-padded kNR-wide strips: the
/// microkernel then reads one contiguous cache line per k step regardless
/// of n, and never needs a column-tail branch in its inner loop. The
/// panel lives in a grow-only per-thread buffer (this runs every CG
/// iteration — see reduction_workspace below for the rationale); only
/// the tail strip's padding columns are zeroed, full strips are fully
/// overwritten. Strips start 64-byte aligned (k·kNR doubles apart from
/// an aligned base).
double* pack_b(const double* pb, std::size_t k, std::size_t n,
               std::size_t nstrips) {
  static thread_local AlignedBuffer panel;
  double* bp = panel.ensure(nstrips * k * kNR);
  for (std::size_t s = 0; s < nstrips; ++s) {
    const std::size_t j0 = s * kNR;
    const std::size_t w = std::min(kNR, n - j0);
    double* dst = bp + s * k * kNR;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* src = pb + kk * n + j0;
      for (std::size_t jj = 0; jj < w; ++jj) dst[kk * kNR + jj] = src[jj];
      for (std::size_t jj = w; jj < kNR; ++jj) dst[kk * kNR + jj] = 0.0;
    }
  }
  return bp;
}

/// MR×W register tile against a packed strip: MR·W accumulators live in
/// registers across the whole k loop (compile-time bounds, __restrict so
/// nothing is spilled for aliasing), C is touched exactly once per tile,
/// and tail strips instantiate their true width — no padded flops and no
/// per-element zero branch. This scalar form handles tail strips on every
/// backend (same per-element accumulation order as the vector form).
template <std::size_t MR, std::size_t W>
inline void micro_nn(const double* __restrict pa, std::size_t lda,
                     const double* __restrict bp, std::size_t k, double alpha,
                     double beta, double* __restrict pc, std::size_t ldc) {
  double acc[MR][W] = {};
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* __restrict b = bp + kk * kNR;
    for (std::size_t r = 0; r < MR; ++r) {
      const double v = pa[r * lda + kk];
      for (std::size_t j = 0; j < W; ++j) acc[r][j] += v * b[j];
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    double* __restrict crow = pc + r * ldc;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < W; ++j) crow[j] = alpha * acc[r][j];
    } else if (beta == 1.0) {
      for (std::size_t j = 0; j < W; ++j) crow[j] += alpha * acc[r][j];
    } else {
      for (std::size_t j = 0; j < W; ++j) {
        crow[j] = beta * crow[j] + alpha * acc[r][j];
      }
    }
  }
}

template <std::size_t MR>
inline void micro_nn_w(std::size_t w, const double* pa, std::size_t lda,
                       const double* bp, std::size_t k, double alpha,
                       double beta, double* pc, std::size_t ldc) {
  switch (w) {
    case 1: micro_nn<MR, 1>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 2: micro_nn<MR, 2>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 3: micro_nn<MR, 3>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 4: micro_nn<MR, 4>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 5: micro_nn<MR, 5>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 6: micro_nn<MR, 6>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 7: micro_nn<MR, 7>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    default: micro_nn<MR, 8>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
  }
}

inline void micro_nn_dispatch(std::size_t mr, std::size_t w, const double* pa,
                              std::size_t lda, const double* bp, std::size_t k,
                              double alpha, double beta, double* pc,
                              std::size_t ldc) {
  switch (mr) {
    case 1: micro_nn_w<1>(w, pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 2: micro_nn_w<2>(w, pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 3: micro_nn_w<3>(w, pa, lda, bp, k, alpha, beta, pc, ldc); break;
    default: micro_nn_w<4>(w, pa, lda, bp, k, alpha, beta, pc, ldc); break;
  }
}

/// Full-width strip microkernel on the SIMD backend: the kNR columns are
/// kNR / V::width vector accumulators of independent chains per row, so
/// each C element accumulates in exactly the same order as the scalar
/// micro_nn<MR, kNR> — the backends differ only in how many independent
/// chains advance per instruction. Epilogue uses the same beta 0/1/other
/// expression trees. Register budget at kMR = 4: AVX-512 holds 4 acc +
/// B + broadcast in 6 of 32 zmm; AVX2 8 + 2 + 1 of 16 ymm.
template <class V, std::size_t MR>
inline void micro_nn_full(const double* __restrict pa, std::size_t lda,
                          const double* __restrict bp, std::size_t k,
                          double alpha, double beta, double* __restrict pc,
                          std::size_t ldc) {
  static_assert(kNR % V::width == 0, "strip width must be a lane multiple");
  constexpr std::size_t NV = kNR / V::width;
  V acc[MR][NV];
  for (std::size_t r = 0; r < MR; ++r) {
    for (std::size_t j = 0; j < NV; ++j) acc[r][j] = V::zero();
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* __restrict b = bp + kk * kNR;
    V bv[NV];
    for (std::size_t j = 0; j < NV; ++j) bv[j] = V::load(b + j * V::width);
    for (std::size_t r = 0; r < MR; ++r) {
      const V av = V::broadcast(pa[r * lda + kk]);
      for (std::size_t j = 0; j < NV; ++j) {
        acc[r][j] = acc[r][j] + av * bv[j];
      }
    }
  }
  const V alphav = V::broadcast(alpha);
  for (std::size_t r = 0; r < MR; ++r) {
    double* __restrict crow = pc + r * ldc;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < NV; ++j) {
        (alphav * acc[r][j]).store(crow + j * V::width);
      }
    } else if (beta == 1.0) {
      for (std::size_t j = 0; j < NV; ++j) {
        (V::load(crow + j * V::width) + alphav * acc[r][j])
            .store(crow + j * V::width);
      }
    } else {
      const V betav = V::broadcast(beta);
      for (std::size_t j = 0; j < NV; ++j) {
        (betav * V::load(crow + j * V::width) + alphav * acc[r][j])
            .store(crow + j * V::width);
      }
    }
  }
}

template <class V>
inline void micro_nn_full_mr(std::size_t mr, const double* pa, std::size_t lda,
                             const double* bp, std::size_t k, double alpha,
                             double beta, double* pc, std::size_t ldc) {
  switch (mr) {
    case 1: micro_nn_full<V, 1>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 2: micro_nn_full<V, 2>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    case 3: micro_nn_full<V, 3>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
    default: micro_nn_full<V, 4>(pa, lda, bp, k, alpha, beta, pc, ldc); break;
  }
}

// ------------------------------------------------------------- gemm_tn

/// Reusable per-calling-thread reduction workspace: the two-phase
/// kernels run every CG iteration, and a fresh large allocation per call
/// means fresh page faults per call. Grow-only and uninitialized — each
/// team thread first-touches its own partial slice (see AlignedBuffer).
double* reduction_workspace(std::size_t elems) {
  static thread_local AlignedBuffer ws;
  return ws.ensure(elems);
}

/// Phase-1 block: fold U samples starting at row `i` into the local m×n
/// partial in one pass over the panel — U× less accumulator traffic than
/// the seed's one-sample loop, contiguous streaming loads of A and B,
/// and no per-element zero branch. U is a compile-time constant so the
/// inner sums fully unroll; the class dimension advances V::width
/// independent output elements per step (the per-element sum over u is
/// the same tree on every backend).
template <class V, std::size_t U>
inline void tn_block(const double* __restrict pa, const double* __restrict pb,
                     std::size_t m, std::size_t n, std::size_t i,
                     double* __restrict local) {
  const double* a[U];
  const double* b[U];
  for (std::size_t u = 0; u < U; ++u) {
    a[u] = pa + (i + u) * m;
    b[u] = pb + (i + u) * n;
  }
  for (std::size_t j = 0; j < m; ++j) {
    double x[U];
    for (std::size_t u = 0; u < U; ++u) x[u] = a[u][j];
    V xv[U];
    for (std::size_t u = 0; u < U; ++u) xv[u] = V::broadcast(x[u]);
    double* __restrict lrow = local + j * n;
    std::size_t t = 0;
    for (; t + V::width <= n; t += V::width) {
      V s = V::zero();
      for (std::size_t u = 0; u < U; ++u) s = s + xv[u] * V::load(b[u] + t);
      (V::load(lrow + t) + s).store(lrow + t);
    }
    for (; t < n; ++t) {
      double s = 0.0;
      for (std::size_t u = 0; u < U; ++u) s += x[u] * b[u][t];
      lrow[t] += s;
    }
  }
}

/// Phase-1 core: accumulate Aᵀ·B for the sample range [i0, i1) into
/// `local` (m×n, pre-zeroed), 8 samples per pass with 4/2/1 tails.
template <class V>
void accumulate_tn(const double* pa, const double* pb, std::size_t m,
                   std::size_t n, std::size_t i0, std::size_t i1,
                   double* local) {
  std::size_t i = i0;
  for (; i + 8 <= i1; i += 8) tn_block<V, 8>(pa, pb, m, n, i, local);
  for (; i + 4 <= i1; i += 4) tn_block<V, 4>(pa, pb, m, n, i, local);
  for (; i + 2 <= i1; i += 2) tn_block<V, 2>(pa, pb, m, n, i, local);
  for (; i < i1; ++i) tn_block<V, 1>(pa, pb, m, n, i, local);
}

/// Phase-1 core for gemv_t: y-panel is a single column.
template <class V>
void accumulate_tv(const double* __restrict pa, const double* __restrict x,
                   std::size_t m, std::size_t i0, std::size_t i1,
                   double* __restrict local) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = pa + i * m;
    const double* a1 = a0 + m;
    const double* a2 = a1 + m;
    const double* a3 = a2 + m;
    const double x0 = x[i];
    const double x1 = x[i + 1];
    const double x2 = x[i + 2];
    const double x3 = x[i + 3];
    const V x0v = V::broadcast(x0);
    const V x1v = V::broadcast(x1);
    const V x2v = V::broadcast(x2);
    const V x3v = V::broadcast(x3);
    std::size_t j = 0;
    for (; j + V::width <= m; j += V::width) {
      V s = x0v * V::load(a0 + j) + x1v * V::load(a1 + j);
      s = s + x2v * V::load(a2 + j);
      s = s + x3v * V::load(a3 + j);
      (V::load(local + j) + s).store(local + j);
    }
    for (; j < m; ++j) {
      local[j] += x0 * a0[j] + x1 * a1[j] + x2 * a2[j] + x3 * a3[j];
    }
  }
  for (; i < i1; ++i) {
    simd::axpy<V>(x[i], pa + i * m, local, m);
  }
}

/// Row boundary for thread t when partitioning CSR rows by nonzero count:
/// the first row whose prefix nnz reaches t/team of the total. Depends
/// only on (row_ptr, t, team) — deterministic and balanced for skewed
/// shards where equal row counts would not be. `rp` may carry a shard
/// view's absolute offsets (rp.front() != 0); the target is relative to
/// that base, so a view and a copied shard partition identically.
std::size_t nnz_boundary(std::span<const std::int64_t> rp, std::int64_t nnz,
                         int t, int team) {
  const std::int64_t target =
      rp.front() +
      nnz * static_cast<std::int64_t>(t) / static_cast<std::int64_t>(team);
  const auto it = std::lower_bound(rp.begin(), rp.end(), target);
  return static_cast<std::size_t>(it - rp.begin());
}

/// Wide-output spmm_tn: gather over the parent matrix's cached transposed
/// (CSC) view — every output row is computed independently from its
/// column's entries in ascending sample order. No per-thread dense
/// partials at all, so reduction work scales with nnz instead of
/// team × cols × n, and the summation order per output element is fixed —
/// the result is bit-identical for ANY thread count. The CSC view is
/// built once per parent matrix (CsrMatrix::transposed()) and is shared
/// by every shard view of it, so the build amortizes across all ranks'
/// CG iterations. The entry loop software-prefetches the B row
/// kPrefetchAhead entries ahead: row_idx-indexed loads are the one
/// pattern the hardware prefetcher cannot cover, and the cursor runs
/// contiguously through the entry arrays so the lookahead index is
/// always in cache already.
template <class V>
void spmm_tn_transpose(double alpha, const CsrView& a, const DenseMatrix& b,
                       double beta, DenseMatrix& c,
                       [[maybe_unused]] bool parallel) {
  const std::size_t m = a.cols(), n = b.cols();
  const CsrTransposed& tv = a.parent()->transposed();
  const std::int64_t* colptr = tv.col_ptr.data();
  const std::int32_t* trows = tv.row_idx.data();
  const double* tvals = tv.values.data();
  const double* pb = b.data().data();
  double* pc = c.data().data();
  const auto elim = static_cast<std::int64_t>(tv.values.size());

  if (a.covers_parent()) {
    const auto nnz = static_cast<std::int64_t>(a.nnz());
#pragma omp parallel if (parallel)
    {
      const int team = team_size();
      const int t = thread_id();
      // Independent per-output-row gathers, balanced by entry count; the
      // boundaries depend only on (col_ptr, team), so the tiling is
      // deterministic and covers exactly [0, jstar).
      const std::span<const std::int64_t> cp(colptr, m + 1);
      const std::size_t j0 = nnz_boundary(cp, nnz, t, team);
      const std::size_t j1 = nnz_boundary(cp, nnz, t + 1, team);
      for (std::size_t j = j0; j < j1; ++j) {
        double* crow = pc + j * n;
        if (beta == 0.0) {
          std::fill(crow, crow + n, 0.0);
        } else if (beta != 1.0) {
          simd::scale<V>(beta, crow, n);
        }
        for (std::int64_t e = colptr[j]; e < colptr[j + 1]; ++e) {
          if (e + kPrefetchAhead < elim) {
            simd::prefetch(
                pb + static_cast<std::size_t>(trows[e + kPrefetchAhead]) * n);
          }
          const double v = alpha * tvals[e];
          const double* brow = pb + static_cast<std::size_t>(trows[e]) * n;
          simd::axpy<V>(v, brow, crow, n);
        }
      }
      // jstar is the first column at which the prefix reaches nnz;
      // trailing empty columns still need their beta scaling.
      const std::size_t jstar = nnz_boundary(cp, nnz, team, team);
      const Range jz = slice(m - jstar, t, team);
      for (std::size_t j = jstar + jz.lo; j < jstar + jz.hi; ++j) {
        double* crow = pc + j * n;
        if (beta == 0.0) {
          std::fill(crow, crow + n, 0.0);
        } else if (beta != 1.0) {
          simd::scale<V>(beta, crow, n);
        }
      }
    }
    return;
  }

  // Shard view: restrict every column of the shared CSC to the view's
  // parent-row range. Rows ascend within a column, so the range is one
  // binary-searched subrange per column — the gather then visits exactly
  // the shard's entries in the same ascending order a copied shard's own
  // CSC would, so the result is bit-identical to the copy (and to any
  // thread count; columns are statically sliced, every output row is
  // written by exactly one thread).
  const auto lo_row = static_cast<std::int32_t>(a.row_begin());
  const auto hi_row = static_cast<std::int32_t>(a.row_begin() + a.rows());
#pragma omp parallel if (parallel)
  {
    const int team = team_size();
    const int t = thread_id();
    const Range jr = slice(m, t, team);
    for (std::size_t j = jr.lo; j < jr.hi; ++j) {
      double* crow = pc + j * n;
      if (beta == 0.0) {
        std::fill(crow, crow + n, 0.0);
      } else if (beta != 1.0) {
        simd::scale<V>(beta, crow, n);
      }
      const std::int32_t* cb = trows + colptr[j];
      const std::int32_t* ce = trows + colptr[j + 1];
      const auto e0 = colptr[j] + (std::lower_bound(cb, ce, lo_row) - cb);
      const auto e1 = colptr[j] + (std::lower_bound(cb, ce, hi_row) - cb);
      for (std::int64_t e = e0; e < e1; ++e) {
        if (e + kPrefetchAhead < elim) {
          simd::prefetch(
              pb + static_cast<std::size_t>(trows[e + kPrefetchAhead]) * n);
        }
        const double v = alpha * tvals[e];
        const double* brow =
            pb + static_cast<std::size_t>(trows[e] - lo_row) * n;
        simd::axpy<V>(v, brow, crow, n);
      }
    }
  }
}

// ------------------------------------------------------------- softmax

/// One fused sweep over a score row: running max and running exp-sum are
/// maintained together (stored exponentials are rescaled on the rare max
/// update), so each score is exponentiated exactly once; a second short
/// sweep normalizes. The implicit class contributes score 0 (m starts at
/// 0, alpha at e⁰ = 1), matching the paper's eq. (9)-(10) stabilization.
/// The running sweep is a true recurrence and stays scalar; the rescale
/// and normalize sweeps scale independent elements and use the backend.
template <class V>
double softmax_row(const double* s, double* p, std::size_t c,
                   std::int32_t label, double& lse_out) {
  double m = 0.0;
  double alpha = 1.0;
  for (std::size_t j = 0; j < c; ++j) {
    const double v = s[j];
    if (v <= m) {
      const double e = std::exp(v - m);
      p[j] = e;
      alpha += e;
    } else {
      const double rescale = std::exp(m - v);
      simd::scale<V>(rescale, p, j);
      alpha = alpha * rescale + 1.0;
      p[j] = 1.0;
      m = v;
    }
  }
  const double inv_alpha = 1.0 / alpha;
  simd::scale<V>(inv_alpha, p, c);
  lse_out = m + std::log(alpha);
  const auto y = static_cast<std::size_t>(label);
  return lse_out - (y < c ? s[y] : 0.0);
}

// ===========================================================================
// Engine kernels, templated on the SIMD backend. The public kernels
// instantiate simd::Active; kernels::scalar instantiates simd::Scalar as
// the parity oracle. Identical blocking, partitioning and fold order —
// only the number of independent chains per instruction differs.
// ===========================================================================

template <class V>
void engine_gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
                    double beta, DenseMatrix& c) {
  NADMM_CHECK(a.cols() == b.rows(), "gemm_nn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm_nn: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  const double* pa = a.data().data();
  double* pc = c.data().data();

  const std::size_t nstrips = (n + kNR - 1) / kNR;
  const double* bp = pack_b(b.data().data(), k, n, nstrips);

  const std::size_t ntiles = (m + kMR - 1) / kMR;
  [[maybe_unused]] const bool parallel = 2 * m * k * n >= kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t it = 0; it < static_cast<std::ptrdiff_t>(ntiles); ++it) {
    const std::size_t i = static_cast<std::size_t>(it) * kMR;
    const std::size_t mr = std::min(kMR, m - i);
    for (std::size_t s = 0; s < nstrips; ++s) {
      const std::size_t j0 = s * kNR;
      const std::size_t w = std::min(kNR, n - j0);
      if (w == kNR) {
        micro_nn_full_mr<V>(mr, pa + i * k, k, bp + s * k * kNR, k,
                            alpha, beta, pc + i * n + j0, n);
      } else {
        micro_nn_dispatch(mr, w, pa + i * k, k, bp + s * k * kNR, k,
                          alpha, beta, pc + i * n + j0, n);
      }
    }
  }
}

template <class V>
void engine_gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
                    double beta, DenseMatrix& c) {
  NADMM_CHECK(a.rows() == b.rows(), "gemm_tn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
              "gemm_tn: output shape mismatch");
  const std::size_t k = a.rows();  // samples
  const std::size_t m = a.cols();  // features
  const std::size_t n = b.cols();  // classes
  const std::size_t mn = m * n;
  if (mn == 0) return;
  if (k == 0) {
    scale_output(beta, c.data());
    return;
  }
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();

  const bool parallel = 2 * k * m * n >= kParallelFlops;
  const int tmax = max_team(parallel);
  // Per-thread k-block partials; phase 2 folds them in thread order.
  double* ws = reduction_workspace(static_cast<std::size_t>(tmax) * mn);
#pragma omp parallel if (parallel)
  {
    const int team = team_size();
    const int t = thread_id();
    double* local = ws + static_cast<std::size_t>(t) * mn;
    std::fill(local, local + mn, 0.0);
    const Range kr = slice(k, t, team);
    accumulate_tn<V>(pa, pb, m, n, kr.lo, kr.hi, local);
#pragma omp barrier
    const Range er = slice(mn, t, team);
    fold_partials<V>(alpha, beta, pc, ws, mn, team, er.lo, er.hi);
  }
}

template <class V>
void engine_gemv_t(double alpha, DenseView a, std::span<const double> x,
                   double beta, std::span<double> y) {
  NADMM_CHECK(a.rows() == x.size(), "gemv_t: x size mismatch");
  NADMM_CHECK(a.cols() == y.size(), "gemv_t: y size mismatch");
  const std::size_t k = a.rows(), m = a.cols();
  if (m == 0) return;
  if (k == 0) {
    scale_output(beta, y);
    return;
  }
  const double* pa = a.data().data();

  const bool parallel = 2 * m * k >= kParallelFlops;
  const int tmax = max_team(parallel);
  double* ws = reduction_workspace(static_cast<std::size_t>(tmax) * m);
#pragma omp parallel if (parallel)
  {
    const int team = team_size();
    const int t = thread_id();
    double* local = ws + static_cast<std::size_t>(t) * m;
    std::fill(local, local + m, 0.0);
    const Range kr = slice(k, t, team);
    accumulate_tv<V>(pa, x.data(), m, kr.lo, kr.hi, local);
#pragma omp barrier
    const Range er = slice(m, t, team);
    fold_partials<V>(alpha, beta, y.data(), ws, m, team, er.lo, er.hi);
  }
}

template <class V>
void engine_spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
                    double beta, DenseMatrix& c) {
  NADMM_CHECK(a.rows() == b.rows(), "spmm_tn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
              "spmm_tn: output shape mismatch");
  const std::size_t n = b.cols();
  const std::size_t mn = c.size();
  if (mn == 0) return;
  if (a.nnz() == 0) {
    scale_output(beta, c.data());
    return;
  }
  const bool parallel = 2 * a.nnz() * n >= kParallelFlops;
  const int tmax = max_team(parallel);

  // Wide outputs (team × output panel larger than the nonzero count):
  // dense per-thread partials would cost more traffic than the matrix
  // itself — build the transposed view and gather instead. Narrow
  // outputs keep the two-phase dense reduction below.
  if (static_cast<std::size_t>(tmax) * mn > a.nnz()) {
    spmm_tn_transpose<V>(alpha, a, b, beta, c, parallel);
    return;
  }

  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  const double* pb = b.data().data();
  double* pc = c.data().data();

  double* ws = reduction_workspace(static_cast<std::size_t>(tmax) * mn);
  const auto nnz = static_cast<std::int64_t>(a.nnz());
#pragma omp parallel if (parallel)
  {
    const int team = team_size();
    const int t = thread_id();
    double* local = ws + static_cast<std::size_t>(t) * mn;
    std::fill(local, local + mn, 0.0);
    const std::size_t r0 = nnz_boundary(rp, nnz, t, team);
    const std::size_t r1 = nnz_boundary(rp, nnz, t + 1, team);
    for (std::size_t i = r0; i < r1; ++i) {
      const double* brow = pb + i * n;
      for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
        double* lrow = local + static_cast<std::size_t>(ci[e]) * n;
        simd::axpy<V>(va[e], brow, lrow, n);
      }
    }
#pragma omp barrier
    const Range er = slice(mn, t, team);
    fold_partials<V>(alpha, beta, pc, ws, mn, team, er.lo, er.hi);
  }
}

template <class V>
double engine_softmax_forward(const DenseMatrix& scores,
                              std::span<const std::int32_t> labels,
                              DenseMatrix& probs, std::span<double> lse) {
  const std::size_t n = scores.rows();
  const std::size_t c = scores.cols();
  NADMM_CHECK(probs.rows() == n && probs.cols() == c,
              "softmax_forward: probs shape mismatch");
  NADMM_CHECK(labels.size() == n && lse.size() == n,
              "softmax_forward: labels/lse size mismatch");
  if (n == 0) return 0.0;
  const double* ps = scores.data().data();
  double* pp = probs.data().data();

  const bool parallel = n * c >= kParallelRows;
  const int tmax = max_team(parallel);
  std::vector<double> partial(static_cast<std::size_t>(tmax), 0.0);
#pragma omp parallel if (parallel)
  {
    const int team = team_size();
    const int t = thread_id();
    const Range rr = slice(n, t, team);
    double loss = 0.0;
    for (std::size_t i = rr.lo; i < rr.hi; ++i) {
      loss += softmax_row<V>(ps + i * c, pp + i * c, c, labels[i], lse[i]);
    }
    partial[static_cast<std::size_t>(t)] = loss;
  }
  // Fold loss partials in fixed thread order (deterministic for a given
  // thread count; unused slots stay exactly 0.0).
  double total = 0.0;
  for (double v : partial) total += v;
  return total;
}

}  // namespace

// ===========================================================================
// Public engine: the active backend.
// ===========================================================================

const char* active_isa() { return simd::kIsaName; }

void gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  engine_gemm_nn<simd::Active>(alpha, a, b, beta, c);
}

void gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  engine_gemm_tn<simd::Active>(alpha, a, b, beta, c);
}

void gemv_t(double alpha, DenseView a, std::span<const double> x,
            double beta, std::span<double> y) {
  engine_gemv_t<simd::Active>(alpha, a, x, beta, y);
}

void spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  engine_spmm_tn<simd::Active>(alpha, a, b, beta, c);
}

double softmax_forward(const DenseMatrix& scores,
                       std::span<const std::int32_t> labels,
                       DenseMatrix& probs, std::span<double> lse) {
  return engine_softmax_forward<simd::Active>(scores, labels, probs, lse);
}

// Forced-scalar instantiation: the ISA parity oracle.

namespace scalar {

void gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  engine_gemm_nn<simd::Scalar>(alpha, a, b, beta, c);
}

void gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  engine_gemm_tn<simd::Scalar>(alpha, a, b, beta, c);
}

void gemv_t(double alpha, DenseView a, std::span<const double> x,
            double beta, std::span<double> y) {
  engine_gemv_t<simd::Scalar>(alpha, a, x, beta, y);
}

void spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  engine_spmm_tn<simd::Scalar>(alpha, a, b, beta, c);
}

double softmax_forward(const DenseMatrix& scores,
                       std::span<const std::int32_t> labels,
                       DenseMatrix& probs, std::span<double> lse) {
  return engine_softmax_forward<simd::Scalar>(scores, labels, probs, lse);
}

}  // namespace scalar

// ===========================================================================
// Seed reference kernels (verbatim pre-engine implementations, minus the
// flop accounting which the public wrappers own).
// ===========================================================================

namespace reference {

void gemm_nn(double alpha, const DenseMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  NADMM_CHECK(a.cols() == b.rows(), "gemm_nn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm_nn: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();
  constexpr std::size_t kBlockK = 256;

  const std::ptrdiff_t mm = static_cast<std::ptrdiff_t>(m);
  [[maybe_unused]] const bool parallel = 2 * m * k * n >= kParallelFlops;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < mm; ++i) {
    double* crow = pc + static_cast<std::size_t>(i) * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const double* arow = pa + static_cast<std::size_t>(i) * k;
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::size_t k1 = std::min(k, k0 + kBlockK);
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double av = alpha * arow[kk];
        if (av == 0.0) continue;
        const double* brow = pb + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void gemm_tn(double alpha, const DenseMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  NADMM_CHECK(a.rows() == b.rows(), "gemm_tn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
              "gemm_tn: output shape mismatch");
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();

  if (beta == 0.0) {
    std::fill(c.data().begin(), c.data().end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, c.data());
  }

  [[maybe_unused]] const bool parallel = 2 * k * m * n >= kParallelFlops;
#pragma omp parallel if (parallel)
  {
    std::vector<double> local(m * n, 0.0);
#pragma omp for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(k); ++i) {
      const double* arow = pa + static_cast<std::size_t>(i) * m;
      const double* brow = pb + static_cast<std::size_t>(i) * n;
      for (std::size_t j = 0; j < m; ++j) {
        const double av = arow[j];
        if (av == 0.0) continue;
        double* lrow = local.data() + j * n;
        for (std::size_t t = 0; t < n; ++t) lrow[t] += av * brow[t];
      }
    }
#pragma omp critical(nadmm_ref_gemm_tn_reduce)
    {
      for (std::size_t e = 0; e < local.size(); ++e) pc[e] += alpha * local[e];
    }
  }
}

void gemv_t(double alpha, const DenseMatrix& a, std::span<const double> x,
            double beta, std::span<double> y) {
  NADMM_CHECK(a.rows() == x.size(), "gemv_t: x size mismatch");
  NADMM_CHECK(a.cols() == y.size(), "gemv_t: y size mismatch");
  const std::size_t k = a.rows(), m = a.cols();
  const double* pa = a.data().data();
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, y);
  }
  [[maybe_unused]] const bool parallel = 2 * m * k >= kParallelFlops;
#pragma omp parallel if (parallel)
  {
    std::vector<double> local(m, 0.0);
#pragma omp for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(k); ++i) {
      const double xv = x[i];
      if (xv == 0.0) continue;
      const double* arow = pa + static_cast<std::size_t>(i) * m;
      for (std::size_t j = 0; j < m; ++j) local[j] += xv * arow[j];
    }
#pragma omp critical(nadmm_ref_gemv_t_reduce)
    {
      for (std::size_t j = 0; j < m; ++j) y[j] += alpha * local[j];
    }
  }
}

void spmm_tn(double alpha, const CsrMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  NADMM_CHECK(a.rows() == b.rows(), "spmm_tn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.cols() && c.cols() == b.cols(),
              "spmm_tn: output shape mismatch");
  const std::size_t n = b.cols();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  const double* pb = b.data().data();
  double* pc = c.data().data();
  if (beta == 0.0) {
    std::fill(c.data().begin(), c.data().end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, c.data());
  }
  [[maybe_unused]] const bool parallel = 2 * a.nnz() * n >= kParallelFlops;
#pragma omp parallel if (parallel)
  {
    std::vector<double> local(c.size(), 0.0);
#pragma omp for schedule(dynamic, 64)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.rows()); ++i) {
      const double* brow = pb + static_cast<std::size_t>(i) * n;
      for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
        double* lrow = local.data() + static_cast<std::size_t>(ci[e]) * n;
        const double av = va[e];
        for (std::size_t j = 0; j < n; ++j) lrow[j] += av * brow[j];
      }
    }
#pragma omp critical(nadmm_ref_spmm_tn_reduce)
    {
      for (std::size_t e = 0; e < local.size(); ++e) pc[e] += alpha * local[e];
    }
  }
}

double softmax_forward(const DenseMatrix& scores,
                       std::span<const std::int32_t> labels,
                       DenseMatrix& probs, std::span<double> lse) {
  const std::size_t n = scores.rows();
  const std::size_t c = scores.cols();
  NADMM_CHECK(probs.rows() == n && probs.cols() == c,
              "softmax_forward: probs shape mismatch");
  NADMM_CHECK(labels.size() == n && lse.size() == n,
              "softmax_forward: labels/lse size mismatch");
  double loss = 0.0;
  [[maybe_unused]] const bool parallel = n * c >= kParallelRows;
#pragma omp parallel for schedule(static) reduction(+ : loss) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const auto s = scores.row(static_cast<std::size_t>(i));
    auto prob = probs.row(static_cast<std::size_t>(i));
    double m = 0.0;  // implicit class score
    for (double v : s) m = std::max(m, v);
    double alpha = std::exp(-m);  // implicit class contribution
    for (std::size_t cc = 0; cc < c; ++cc) {
      prob[cc] = std::exp(s[cc] - m);
      alpha += prob[cc];
    }
    const double inv_alpha = 1.0 / alpha;
    for (std::size_t cc = 0; cc < c; ++cc) prob[cc] *= inv_alpha;
    const double l = m + std::log(alpha);
    lse[static_cast<std::size_t>(i)] = l;
    const auto y = static_cast<std::size_t>(labels[static_cast<std::size_t>(i)]);
    loss += l - (y < c ? s[y] : 0.0);
  }
  return loss;
}

}  // namespace reference

}  // namespace nadmm::la::kernels
