// Compressed sparse row (CSR) matrix.
//
// The E18 dataset the paper evaluates is single-cell RNA count data:
// extremely high-dimensional (p ≈ 28k) and very sparse. The dense path
// cannot hold such shards, so the softmax objective also runs over CSR
// features with SpMM / SpMM^T kernels mirroring the dense GEMMs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "la/dense_matrix.hpp"

namespace nadmm::la {

/// One nonzero entry, used when building a CSR matrix from triplets.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Column-major (CSC) view of a CsrMatrix: entries of column j live at
/// [col_ptr[j], col_ptr[j+1]) in ascending row order. Built lazily by
/// CsrMatrix::transposed() for the wide-output Aᵀ·B gather kernel.
struct CsrTransposed {
  std::vector<std::int64_t> col_ptr;  // cols + 1
  std::vector<std::int32_t> row_idx;  // nnz sample indices
  std::vector<double> values;         // nnz values
};

class CsrView;

namespace detail {

/// Build the CSC view of a CSR matrix given its raw arrays. With
/// `parallel` set (and OpenMP compiled in) this is the two-pass parallel
/// build: per-thread column histograms over nnz-balanced row blocks →
/// one exclusive scan turning the histograms into per-thread per-column
/// write cursors → parallel scatter. Thread blocks cover ascending row
/// ranges and the scan orders cursors by thread id, so each column's
/// entries land in ascending row order — the output is byte-identical
/// to the sequential build for every thread count. Exposed so tests and
/// benches can pit the two builds against each other directly.
CsrTransposed build_transposed(std::size_t rows, std::size_t cols,
                               std::span<const std::int64_t> row_ptr,
                               std::span<const std::int64_t> col_idx,
                               std::span<const double> values, bool parallel);

}  // namespace detail

/// CSR matrix of doubles. The sparsity structure (row_ptr / col_idx) is
/// immutable after construction; stored values may be updated in place
/// through values_mut(), which invalidates this matrix's cached CSC view.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets (duplicates are summed). Triplets may be in any
  /// order. Throws if any index is out of range.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  /// Build directly from CSR arrays. `row_ptr` has rows+1 entries.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::int64_t> row_ptr, std::vector<std::int64_t> col_idx,
            std::vector<double> values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// Fraction of entries that are stored (nnz / (rows*cols)).
  [[nodiscard]] double density() const;

  [[nodiscard]] std::span<const std::int64_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const std::int64_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const { return values_; }

  /// Mutable view of the stored values (the column structure stays
  /// fixed). Calling this invalidates THIS matrix's cached transposed
  /// (CSC) view — it is rebuilt from the current values on the next
  /// transposed() call, never served stale. Copies taken before the
  /// mutation keep the cache they shared (consistent with their own
  /// deep-copied values). Not thread-safe against concurrent kernels on
  /// the same matrix — but neither is mutating values_ while a kernel
  /// reads them.
  [[nodiscard]] std::span<double> values_mut();

  /// Extract a contiguous row range [begin, end) as a new CSR matrix with
  /// the same column dimension. Used by the data partitioner.
  [[nodiscard]] CsrMatrix row_slice(std::size_t begin, std::size_t end) const;

  /// Non-owning view of the contiguous row range [begin, end) — O(1)
  /// metadata sharing this matrix's arrays (and its cached transposed
  /// view). The matrix must outlive the view.
  [[nodiscard]] CsrView view(std::size_t begin, std::size_t end) const;

  /// Densify (tests and small problems only).
  [[nodiscard]] DenseMatrix to_dense() const;

  /// Approximate resident bytes: the CSR arrays plus the transposed
  /// (CSC) view that the wide-output Aᵀ·B kernel builds lazily. The view
  /// is counted up front so byte budgets (DatasetProvider's LRU) hold at
  /// peak, not just before the first gradient step.
  [[nodiscard]] std::size_t approx_bytes() const {
    return row_ptr_.size() * sizeof(std::int64_t) +
           col_idx_.size() * sizeof(std::int64_t) +
           values_.size() * sizeof(double) +
           (cols_ + 1) * sizeof(std::int64_t) +
           values_.size() * (sizeof(std::int32_t) + sizeof(double));
  }

  /// Lazy transposed (CSC) view, built deterministically on first use
  /// (detail::build_transposed — parallel above a nnz threshold, output
  /// bytes independent of thread count) and shared between copies of
  /// this matrix. values_mut() invalidates it, so the view never goes
  /// stale. Thread-safe: concurrent first calls — e.g. sweep scenarios
  /// sharing a cached dataset — build exactly once. The ADMM
  /// gradient/Hessian path hits this every CG iteration on wide shards,
  /// so the build cost amortizes to zero.
  [[nodiscard]] const CsrTransposed& transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_{0};
  std::vector<std::int64_t> col_idx_;
  std::vector<double> values_;

  // Shared (not deep-copied) lazy transpose state; see transposed().
  mutable std::shared_ptr<std::once_flag> transpose_once_ =
      std::make_shared<std::once_flag>();
  mutable std::shared_ptr<CsrTransposed> transpose_ =
      std::make_shared<CsrTransposed>();
};

/// Non-owning, read-only row-range view of a CsrMatrix. A whole matrix
/// converts implicitly, so the product kernels below accept either; a
/// rank's CSR shard is O(1) metadata instead of copied index/value
/// arrays. `row_ptr()` keeps the parent's *absolute* offsets (entries of
/// view row r live at [row_ptr()[r], row_ptr()[r+1]) in the shared
/// col_idx()/values() arrays) — exactly the indexing every CSR kernel
/// already uses, so row_ptr()[0] is generally nonzero here. The parent
/// matrix must outlive the view.
class CsrView {
 public:
  CsrView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate adapter.
  CsrView(const CsrMatrix& m) : parent_(&m), row_begin_(0), rows_(m.rows()) {}
  CsrView(const CsrMatrix& m, std::size_t begin, std::size_t end);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return parent_ ? parent_->cols() : 0; }
  [[nodiscard]] std::size_t nnz() const {
    const auto rp = row_ptr();
    return rp.empty() ? 0
                      : static_cast<std::size_t>(rp[rows_] - rp[0]);
  }

  /// Absolute row offsets (rows()+1 entries) into the shared arrays.
  [[nodiscard]] std::span<const std::int64_t> row_ptr() const {
    return parent_ == nullptr
               ? std::span<const std::int64_t>{}
               : parent_->row_ptr().subspan(row_begin_, rows_ + 1);
  }
  [[nodiscard]] std::span<const std::int64_t> col_idx() const {
    return parent_ ? parent_->col_idx() : std::span<const std::int64_t>{};
  }
  [[nodiscard]] std::span<const double> values() const {
    return parent_ ? parent_->values() : std::span<const double>{};
  }

  /// First parent row covered by this view (offset into the parent's
  /// cached transposed view, used by the wide-output gather kernel).
  [[nodiscard]] std::size_t row_begin() const { return row_begin_; }
  [[nodiscard]] bool covers_parent() const {
    return parent_ != nullptr && row_begin_ == 0 && rows_ == parent_->rows();
  }
  [[nodiscard]] const CsrMatrix* parent() const { return parent_; }

 private:
  const CsrMatrix* parent_ = nullptr;
  std::size_t row_begin_ = 0;
  std::size_t rows_ = 0;
};

/// C = alpha * A * B + beta * C.  A: m×k CSR, B: k×n dense, C: m×n dense.
void spmm_nn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// C = alpha * A^T * B + beta * C.  A: k×m CSR, B: k×n dense, C: m×n dense.
void spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// y = alpha * A * x + beta * y.
void spmv(double alpha, const CsrView& a, std::span<const double> x,
          double beta, std::span<double> y);

}  // namespace nadmm::la
