#include "la/sparse_matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <numeric>

#include "la/flops.hpp"
#include "la/kernels.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::la {

namespace {
// Same threshold as the dense kernels: small products stay serial.
constexpr std::size_t kParallelFlops = kernels::kParallelFlops;

// Below this many nonzeros the parallel CSC build's histogram/scan
// overhead (team × cols counters) outweighs the scatter parallelism.
constexpr std::size_t kParallelBuildNnz = std::size_t{1} << 16;

// Compulsory CSR traffic: each nonzero is a value (8B) plus a column
// index (8B), the row pointers are streamed once, dense operands are
// read once, and the output is written once (read too when beta != 0).
std::uint64_t csr_bytes(const CsrView& a) {
  return 16 * a.nnz() + 8 * (a.rows() + 1);
}
}  // namespace

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    NADMM_CHECK(t.row < rows && t.col < cols, "CsrMatrix: triplet out of range");
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  row_ptr_.assign(rows + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    const Triplet& t = triplets[i];
    if (!values_.empty() && i > 0 && triplets[i - 1].row == t.row &&
        triplets[i - 1].col == t.col) {
      values_.back() += t.value;  // merge duplicates
      continue;
    }
    col_idx_.push_back(static_cast<std::int64_t>(t.col));
    values_.push_back(t.value);
    ++row_ptr_[t.row + 1];
  }
  std::partial_sum(row_ptr_.begin(), row_ptr_.end(), row_ptr_.begin());
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::int64_t> row_ptr,
                     std::vector<std::int64_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  NADMM_CHECK(row_ptr_.size() == rows + 1, "CsrMatrix: row_ptr size mismatch");
  NADMM_CHECK(col_idx_.size() == values_.size(),
              "CsrMatrix: col_idx/values size mismatch");
  NADMM_CHECK(row_ptr_.front() == 0 &&
                  row_ptr_.back() == static_cast<std::int64_t>(values_.size()),
              "CsrMatrix: row_ptr does not cover values");
  for (std::size_t r = 0; r < rows; ++r) {
    NADMM_CHECK(row_ptr_[r] <= row_ptr_[r + 1], "CsrMatrix: row_ptr not monotone");
  }
  for (std::int64_t c : col_idx_) {
    NADMM_CHECK(c >= 0 && static_cast<std::size_t>(c) < cols,
                "CsrMatrix: column index out of range");
  }
}

double CsrMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

CsrMatrix CsrMatrix::row_slice(std::size_t begin, std::size_t end) const {
  NADMM_CHECK(begin <= end && end <= rows_, "row_slice: bad range");
  const std::int64_t lo = row_ptr_[begin];
  const std::int64_t hi = row_ptr_[end];
  std::vector<std::int64_t> rp(end - begin + 1);
  for (std::size_t r = 0; r <= end - begin; ++r) rp[r] = row_ptr_[begin + r] - lo;
  std::vector<std::int64_t> ci(col_idx_.begin() + lo, col_idx_.begin() + hi);
  std::vector<double> vals(values_.begin() + lo, values_.begin() + hi);
  return CsrMatrix(end - begin, cols_, std::move(rp), std::move(ci),
                   std::move(vals));
}

CsrView::CsrView(const CsrMatrix& m, std::size_t begin, std::size_t end)
    : parent_(&m), row_begin_(begin), rows_(end - begin) {
  NADMM_CHECK(begin <= end && end <= m.rows(), "CsrView: bad row range");
}

CsrView CsrMatrix::view(std::size_t begin, std::size_t end) const {
  return {*this, begin, end};
}

namespace detail {

namespace {

/// Sequential counting-sort transpose (the pre-parallel build, verbatim):
/// histogram by column, prefix sum, then a row sweep scattering entries —
/// within a column, ascending row order. This is the byte-level oracle
/// the parallel build must reproduce.
void build_transposed_seq(std::size_t rows, std::size_t cols,
                          std::span<const std::int64_t> row_ptr,
                          std::span<const std::int64_t> col_idx,
                          std::span<const double> values, CsrTransposed& t) {
  for (std::int64_t c : col_idx) ++t.col_ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t j = 0; j < cols; ++j) t.col_ptr[j + 1] += t.col_ptr[j];
  std::vector<std::int64_t> next(t.col_ptr.begin(), t.col_ptr.end() - 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const auto j = static_cast<std::size_t>(col_idx[e]);
      const std::int64_t p = next[j]++;
      t.row_idx[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(r);
      t.values[static_cast<std::size_t>(p)] = values[e];
    }
  }
}

#ifdef _OPENMP
/// Row boundary for thread t when splitting rows by nonzero count (same
/// scheme as the kernels' nnz_boundary): the first row whose prefix nnz
/// reaches t/team of the total. Depends only on (row_ptr, t, team).
std::size_t build_row_bound(std::span<const std::int64_t> rp, std::int64_t nnz,
                            int t, int team) {
  const std::int64_t target =
      nnz * static_cast<std::int64_t>(t) / static_cast<std::int64_t>(team);
  const auto it = std::lower_bound(rp.begin(), rp.end(), target);
  return static_cast<std::size_t>(it - rp.begin());
}
#endif

}  // namespace

CsrTransposed build_transposed(std::size_t rows, std::size_t cols,
                               std::span<const std::int64_t> row_ptr,
                               std::span<const std::int64_t> col_idx,
                               std::span<const double> values, bool parallel) {
  CsrTransposed t;
  t.col_ptr.assign(cols + 1, 0);
  t.row_idx.resize(values.size());
  t.values.resize(values.size());
#ifdef _OPENMP
  if (parallel && omp_get_max_threads() > 1 && !values.empty()) {
    const auto nnz = static_cast<std::int64_t>(values.size());
    const int tmax = omp_get_max_threads();
    // Per-thread column histograms, then per-thread per-column write
    // cursors after the scan. Each thread first-touches its own stripe.
    std::vector<std::int64_t> counts(static_cast<std::size_t>(tmax) * cols);
#pragma omp parallel
    {
      const int team = omp_get_num_threads();
      const int tid = omp_get_thread_num();
      std::int64_t* my = counts.data() + static_cast<std::size_t>(tid) * cols;
      std::fill(my, my + cols, 0);
      // Contiguous row blocks balanced by nnz: block t covers rows
      // [r0, r1), ascending with t, so thread-id order below is also
      // ascending row order — the determinism hinge.
      const std::size_t r0 = build_row_bound(row_ptr, nnz, tid, team);
      const std::size_t r1 = build_row_bound(row_ptr, nnz, tid + 1, team);
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
          ++my[static_cast<std::size_t>(col_idx[e])];
        }
      }
#pragma omp barrier
#pragma omp single
      {
        // Exclusive scan over (column, thread) in column-major, thread-
        // minor order: col_ptr[j] is column j's start and counts[q][j]
        // becomes thread q's first write slot in column j. O(team ·
        // cols) scalar work — negligible next to the scatter.
        std::int64_t run = 0;
        for (std::size_t j = 0; j < cols; ++j) {
          t.col_ptr[j] = run;
          for (int q = 0; q < team; ++q) {
            std::int64_t& slot = counts[static_cast<std::size_t>(q) * cols + j];
            const std::int64_t c = slot;
            slot = run;
            run += c;
          }
        }
        t.col_ptr[cols] = run;
      }  // implicit barrier
      // Scatter: each thread writes its block's entries at its own
      // cursors. Within a column, slots ascend with thread id and rows
      // ascend within a block, so the column ends up in ascending row
      // order — byte-identical to the sequential build.
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
          const auto j = static_cast<std::size_t>(col_idx[e]);
          const std::int64_t p = my[j]++;
          t.row_idx[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(r);
          t.values[static_cast<std::size_t>(p)] = values[e];
        }
      }
    }
    return t;
  }
#else
  static_cast<void>(parallel);
#endif
  build_transposed_seq(rows, cols, row_ptr, col_idx, values, t);
  return t;
}

}  // namespace detail

std::span<double> CsrMatrix::values_mut() {
  // Fresh cache state for this matrix only: copies sharing the old
  // pointers keep a view consistent with their own (deep-copied) values.
  transpose_once_ = std::make_shared<std::once_flag>();
  transpose_ = std::make_shared<CsrTransposed>();
  return values_;
}

const CsrTransposed& CsrMatrix::transposed() const {
  std::call_once(*transpose_once_, [this] {
    NADMM_CHECK(rows_ <= 0x7fffffffULL,
                "CsrMatrix::transposed: row count exceeds int32 range");
    *transpose_ = detail::build_transposed(rows_, cols_, row_ptr_, col_idx_,
                                           values_, nnz() >= kParallelBuildNnz);
  });
  return *transpose_;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      d.at(r, static_cast<std::size_t>(col_idx_[e])) = values_[e];
    }
  }
  return d;
}

void spmm_nn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  NADMM_CHECK(a.cols() == b.rows(), "spmm_nn: inner dimension mismatch");
  NADMM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
              "spmm_nn: output shape mismatch");
  const std::size_t n = b.cols();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  const double* pb = b.data().data();
  double* pc = c.data().data();
  [[maybe_unused]] const bool parallel = 2 * a.nnz() * n >= kParallelFlops;
#pragma omp parallel for schedule(dynamic, 64) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.rows()); ++i) {
    double* crow = pc + static_cast<std::size_t>(i) * n;
    if (beta == 0.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
      const double av = alpha * va[e];
      const double* brow = pb + static_cast<std::size_t>(ci[e]) * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  flops::add(2 * a.nnz() * n);
  flops::add_bytes(csr_bytes(a) +
                   8 * (a.cols() * n + flops::output_passes(beta) * a.rows() * n));
}

void spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c) {
  TELEM_SPAN("kernel", "spmm_tn");
  kernels::spmm_tn(alpha, a, b, beta, c);
  const std::size_t n = b.cols();
  flops::add(2 * a.nnz() * n);
  flops::add_bytes(csr_bytes(a) +
                   8 * (a.rows() * n + flops::output_passes(beta) * a.cols() * n));
}

void spmv(double alpha, const CsrView& a, std::span<const double> x,
          double beta, std::span<double> y) {
  NADMM_CHECK(a.cols() == x.size(), "spmv: x size mismatch");
  NADMM_CHECK(a.rows() == y.size(), "spmv: y size mismatch");
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  [[maybe_unused]] const bool parallel = 2 * a.nnz() >= kParallelFlops;
#pragma omp parallel for schedule(dynamic, 64) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(a.rows()); ++i) {
    double acc = 0.0;
    for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
      acc += va[e] * x[static_cast<std::size_t>(ci[e])];
    }
    y[i] = alpha * acc + beta * y[i];
  }
  flops::add(2 * a.nnz());
  flops::add_bytes(csr_bytes(a) + 8 * (a.cols() + 2 * a.rows()));
}

}  // namespace nadmm::la
