// Row-major dense matrix and the GEMM kernels the optimizer is built on.
//
// The softmax objective's forward pass, gradient and Hessian-vector
// product are all products of an n×p data matrix with p×c / n×c panels
// (c = C−1 classes). The paper runs these on GPUs via cuBLAS; here they
// are blocked OpenMP kernels with flop accounting so the simulated device
// clock can price them (DESIGN.md §2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nadmm::la {

class DenseView;

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows×cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows×cols matrix adopting `values` (row-major, size rows*cols).
  DenseMatrix(std::size_t rows, std::size_t cols, std::vector<double> values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Row r as a span of `cols()` doubles.
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// Reset every entry to `value`.
  void fill(double value);

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Non-owning view of the contiguous row range [begin, end) — O(1)
  /// metadata, no copy. The matrix must outlive the view.
  [[nodiscard]] DenseView view(std::size_t begin, std::size_t end) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning, read-only row-major matrix view. A whole DenseMatrix
/// converts implicitly, so every product kernel below accepts either a
/// matrix or a row-range shard view; a rank's shard is O(1) metadata
/// instead of a copied buffer (the shard-native data plane relies on
/// this). The referenced storage must outlive the view.
class DenseView {
 public:
  DenseView() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate adapter.
  DenseView(const DenseMatrix& m)
      : data_(m.data().data()), rows_(m.rows()), cols_(m.cols()) {}
  DenseView(const double* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_ + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> data() const {
    return {data_, rows_ * cols_};
  }

  /// Sub-view of rows [begin, end) of this view.
  [[nodiscard]] DenseView subrows(std::size_t begin, std::size_t end) const {
    return {data_ + begin * cols_, end - begin, cols_};
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// C = alpha * A * B + beta * C.   A: m×k, B: k×n, C: m×n.
void gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// C = alpha * A^T * B + beta * C.   A: k×m (transposed view), B: k×n, C: m×n.
/// This is the gradient-accumulation shape: A is the data shard (rows =
/// samples), B the per-sample residual panel.
void gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// y = alpha * A * x + beta * y.   A: m×k, x: k, y: m.
void gemv(double alpha, DenseView a, std::span<const double> x,
          double beta, std::span<double> y);

/// y = alpha * A^T * x + beta * y.   A: k×m, x: k, y: m.
void gemv_t(double alpha, DenseView a, std::span<const double> x,
            double beta, std::span<double> y);

}  // namespace nadmm::la
