// BLAS-1 style vector kernels over std::span<double>.
//
// These are the building blocks of conjugate gradient and the ADMM
// updates. All kernels credit their flop counts (see flops.hpp). Kernels
// use OpenMP above a size threshold; below it the loop overhead dominates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nadmm::la {

/// Vectors in this library are plain std::vector<double>; kernels take
/// spans so callers can pass sub-ranges without copies.
using Vec = std::vector<double>;

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = alpha * x + beta * y
void axpby(double alpha, std::span<const double> x, double beta,
           std::span<double> y);

/// dot product <x, y>
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm ||x||_2
[[nodiscard]] double nrm2(std::span<const double> x);

/// Squared Euclidean norm ||x||_2^2
[[nodiscard]] double nrm2_sq(std::span<const double> x);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// y = x
void copy(std::span<const double> x, std::span<double> y);

/// x = value for every element
void fill(std::span<double> x, double value);

/// ||x - y||_2
[[nodiscard]] double dist2(std::span<const double> x, std::span<const double> y);

/// max_i |x_i|  (returns 0 for empty spans)
[[nodiscard]] double amax(std::span<const double> x);

/// sum of elements
[[nodiscard]] double sum(std::span<const double> x);

}  // namespace nadmm::la
