// Lock-free blocked kernel engine for the Newton-ADMM hot path.
//
// Every second-order step runs three product shapes per CG iteration on
// every rank: scores S = A·X (gemm_nn / spmm_nn), gradient and
// Hessian-vector accumulation G = Aᵀ·W (gemm_tn / spmm_tn), and the
// softmax forward sweep over the score panel. The seed kernels serialized
// the transposed products through `#pragma omp critical` reduces; the
// engine replaces them with deterministic two-phase reductions:
//
//   phase 1  each thread accumulates a private partial over a statically
//            partitioned block of the k (sample) dimension;
//   phase 2  the output range is statically partitioned across the same
//            team, and each thread folds the partials for its slice in
//            fixed thread order 0..T−1.
//
// Both phases are static, so for a given thread count the result is
// bit-identical run to run (the sweep scheduler relies on this). The
// dense gemm_nn is a register-blocked microkernel (packed B panel, 4×8
// tiles, no per-element zero branch), and the softmax forward is a fused
// single-sweep (online max / exp / sum with a trailing normalize).
//
// The seed implementations are preserved under kernels::reference — they
// are the parity oracle for tests and the "vs seed" side of
// bench_kernels, which is what BENCH_kernels.json and the CI perf-smoke
// gate measure against.
//
// The inner loops are written against the compile-time SIMD backend in
// la/simd.hpp (AVX-512 / AVX2 / std::experimental::simd / scalar).
// Vector lanes only ever span independent output elements and no path
// fuses a multiply-add, so every backend is bit-identical to the scalar
// engine — kernels::scalar exports the forced-scalar instantiation as
// the oracle the ISA parity tests compare against.
#pragma once

#include <cstdint>
#include <span>

#include "la/dense_matrix.hpp"
#include "la/sparse_matrix.hpp"

namespace nadmm::la::kernels {

/// Shared parallelism threshold: below this many flops an OpenMP region
/// costs more than it saves (SGD minibatches, SVRG inner steps stay
/// serial). Every la kernel — engine, gemv, spmm — gates on this one
/// constant.
inline constexpr std::size_t kParallelFlops = 1 << 17;

/// Row-count analogue of kParallelFlops for cheap per-sample panel
/// sweeps (softmax forward/gradient/Hessian loops).
inline constexpr std::size_t kParallelRows = 1 << 14;

/// The A operand of every engine product is a non-owning row-range view
/// (la::DenseView / la::CsrView); whole matrices convert implicitly, and
/// a rank's shard runs in place on the parent's storage. For a contiguous
/// shard view the engine is bit-identical to running on a copied shard at
/// the same thread count (the CSR gather path is bit-identical for any
/// thread count) — the shard-native data plane and its tests rely on
/// both.

/// C = alpha·A·B + beta·C (A: m×k, B: k×n, C: m×n). Register-blocked
/// microkernel over a packed B panel; deterministic for any thread count
/// (each C row is produced by exactly one thread in fixed k order).
void gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// C = alpha·Aᵀ·B + beta·C (A: k×m, B: k×n, C: m×n). Two-phase lock-free
/// reduction; deterministic for a fixed thread count.
void gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// y = alpha·Aᵀ·x + beta·y (A: k×m). Two-phase lock-free reduction.
void gemv_t(double alpha, DenseView a, std::span<const double> x,
            double beta, std::span<double> y);

/// C = alpha·Aᵀ·B + beta·C (A: k×m CSR). Hybrid lock-free strategy:
/// narrow outputs use the two-phase reduction with CSR rows partitioned
/// by nonzero count (boundaries depend only on (row_ptr, T)); wide
/// outputs — T·m·n larger than nnz, the E18 regime — gather over the
/// parent matrix's cached transposed (CSC) view instead (restricted to
/// the view's row range by per-column binary search for shard views),
/// which has no dense partials at all and is bit-identical for any
/// thread count.
void spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);

/// Fused softmax forward over a score panel (n × (C−1), class C implicit
/// with score 0): one online sweep per row computes the stabilizing max,
/// the exponentials and their sum together; a second short sweep
/// normalizes. Writes P (probabilities) and per-row LSE, and returns the
/// summed cross-entropy loss Σ_i [lse_i − s_{i,y_i}] (0 for the implicit
/// class). Loss partials are folded in fixed thread order.
double softmax_forward(const DenseMatrix& scores,
                       std::span<const std::int32_t> labels,
                       DenseMatrix& probs, std::span<double> lse);

/// Name of the SIMD backend the engine was compiled against:
/// "avx512" | "avx2" | "stdsimd" | "scalar". Recorded into bench JSON
/// context and useful when reading parity-test failures from CI legs.
const char* active_isa();

/// Forced-scalar instantiation of the engine (same blocking, same
/// two-phase reductions, 1-lane backend). This is the parity oracle for
/// the ISA dispatch ladder: every vector backend must produce output
/// bit-identical to these at every thread count. Not a seed copy — for
/// that, see kernels::reference below.
namespace scalar {

void gemm_nn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c);
void gemm_tn(double alpha, DenseView a, const DenseMatrix& b,
             double beta, DenseMatrix& c);
void gemv_t(double alpha, DenseView a, std::span<const double> x,
            double beta, std::span<double> y);
void spmm_tn(double alpha, const CsrView& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);
double softmax_forward(const DenseMatrix& scores,
                       std::span<const std::int32_t> labels,
                       DenseMatrix& probs, std::span<double> lse);

}  // namespace scalar

/// Seed (pre-engine) kernels, kept verbatim as the parity oracle and the
/// baseline side of bench_kernels. Not used on any hot path.
namespace reference {

void gemm_nn(double alpha, const DenseMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);
void gemm_tn(double alpha, const DenseMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);
void gemv_t(double alpha, const DenseMatrix& a, std::span<const double> x,
            double beta, std::span<double> y);
void spmm_tn(double alpha, const CsrMatrix& a, const DenseMatrix& b,
             double beta, DenseMatrix& c);
double softmax_forward(const DenseMatrix& scores,
                       std::span<const std::int32_t> labels,
                       DenseMatrix& probs, std::span<double> lse);

}  // namespace reference

}  // namespace nadmm::la::kernels
