#include "la/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "la/flops.hpp"
#include "support/check.hpp"

namespace nadmm::la {

namespace {
// Below this many elements an OpenMP region costs more than it saves.
constexpr std::size_t kParallelThreshold = 1 << 15;
}  // namespace

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  NADMM_CHECK(x.size() == y.size(), "axpy: size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if (x.size() >= kParallelThreshold) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  }
  flops::add(2 * x.size());
}

void axpby(double alpha, std::span<const double> x, double beta,
           std::span<double> y) {
  NADMM_CHECK(x.size() == y.size(), "axpby: size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if (x.size() >= kParallelThreshold) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
  }
  flops::add(3 * x.size());
}

double dot(std::span<const double> x, std::span<const double> y) {
  NADMM_CHECK(x.size() == y.size(), "dot: size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  double acc = 0.0;
  if (x.size() >= kParallelThreshold) {
#pragma omp parallel for schedule(static) reduction(+ : acc)
    for (std::ptrdiff_t i = 0; i < n; ++i) acc += x[i] * y[i];
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) acc += x[i] * y[i];
  }
  flops::add(2 * x.size());
  return acc;
}

double nrm2_sq(std::span<const double> x) { return dot(x, x); }

double nrm2(std::span<const double> x) { return std::sqrt(nrm2_sq(x)); }

void scal(double alpha, std::span<double> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  if (x.size() >= kParallelThreshold) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < n; ++i) x[i] *= alpha;
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) x[i] *= alpha;
  }
  flops::add(x.size());
}

void copy(std::span<const double> x, std::span<double> y) {
  NADMM_CHECK(x.size() == y.size(), "copy: size mismatch");
  std::copy(x.begin(), x.end(), y.begin());
}

void fill(std::span<double> x, double value) {
  std::fill(x.begin(), x.end(), value);
}

double dist2(std::span<const double> x, std::span<const double> y) {
  NADMM_CHECK(x.size() == y.size(), "dist2: size mismatch");
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  double acc = 0.0;
  if (x.size() >= kParallelThreshold) {
#pragma omp parallel for schedule(static) reduction(+ : acc)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const double d = x[i] - y[i];
      acc += d * d;
    }
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const double d = x[i] - y[i];
      acc += d * d;
    }
  }
  flops::add(3 * x.size());
  return std::sqrt(acc);
}

double amax(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double sum(std::span<const double> x) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(x.size());
  double acc = 0.0;
  if (x.size() >= kParallelThreshold) {
#pragma omp parallel for schedule(static) reduction(+ : acc)
    for (std::ptrdiff_t i = 0; i < n; ++i) acc += x[i];
  } else {
    for (std::ptrdiff_t i = 0; i < n; ++i) acc += x[i];
  }
  flops::add(x.size());
  return acc;
}

}  // namespace nadmm::la
