#include "la/device.hpp"

#include <cstdlib>

namespace nadmm::la {

DeviceModel device_from_string(const std::string& spec) {
  if (spec == "p100") return p100_device();
  if (spec == "cpu") return cpu_device();
  char* end = nullptr;
  const double gf = std::strtod(spec.c_str(), &end);
  NADMM_CHECK(end != nullptr && *end == '\0' && gf > 0.0,
              "device spec must be 'p100', 'cpu', or a positive GF/s number");
  return {"custom", gf};
}

}  // namespace nadmm::la
