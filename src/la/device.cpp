#include "la/device.hpp"

#include <cstdlib>

namespace nadmm::la {

DeviceModel device_from_string(const std::string& spec) {
  if (spec == "p100") return p100_device();
  if (spec == "cpu") return cpu_device();
  char* end = nullptr;
  const double gf = std::strtod(spec.c_str(), &end);
  NADMM_CHECK(end != nullptr && gf > 0.0,
              "device spec must be 'p100', 'cpu', '<gflops>', or "
              "'<gflops>:<gbytes_per_s>'");
  if (*end == '\0') return {"custom", gf};
  NADMM_CHECK(*end == ':', "device spec: expected ':' between GF/s and GB/s");
  char* end2 = nullptr;
  const double gb = std::strtod(end + 1, &end2);
  NADMM_CHECK(end2 != nullptr && *end2 == '\0' && gb > 0.0,
              "device spec: bandwidth must be a positive GB/s number");
  return {"custom", gf, gb};
}

}  // namespace nadmm::la
