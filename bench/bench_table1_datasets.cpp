// Table 1: "Description of the datasets."
//
// Prints the paper-scale dataset parameters next to the scaled synthetic
// stand-ins this reproduction generates (classes, samples, test size,
// features, plus measured density — the axis that matters for E18).
#include "bench_util.hpp"
#include "data/generators.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Table 1: dataset descriptions (paper vs generated)");
  bench::add_common_options(cli);
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Table 1 — dataset descriptions", "paper Table 1");

  Table t({"dataset", "classes", "paper n", "paper test", "paper p",
           "gen n", "gen test", "gen p", "gen density", "gen secs"});
  const auto paper = data::paper_table1();
  const char* names[] = {"higgs", "mnist", "cifar", "e18"};
  for (std::size_t i = 0; i < paper.size(); ++i) {
    const auto cfg = bench::config_from_cli(cli, names[i]);
    WallTimer timer;
    const auto tt = runner::make_data(cfg);
    const double secs = timer.seconds();
    t.add_row({paper[i].name, Table::fmt_int(paper[i].classes),
               Table::fmt_int(static_cast<long long>(paper[i].samples)),
               Table::fmt_int(static_cast<long long>(paper[i].test_size)),
               Table::fmt_int(static_cast<long long>(paper[i].features)),
               Table::fmt_int(static_cast<long long>(tt.train.num_samples())),
               Table::fmt_int(static_cast<long long>(tt.test.num_samples())),
               Table::fmt_int(static_cast<long long>(tt.train.num_features())),
               Table::fmt(tt.train.feature_density(), 3),
               Table::fmt(secs, 2)});
  }
  t.print();
  std::printf(
      "\nNote: generated sizes are scaled for CPU-minutes budgets; class\n"
      "count, feature dimension (except E18, scaled), conditioning and\n"
      "sparsity match the paper's datasets. Use --scale to enlarge.\n");
  return 0;
}
