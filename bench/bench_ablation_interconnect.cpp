// Ablation (paper §3, Remark 1 and the GIANT comparison): "the difference
// in communication overhead ... is not crippling [on 100 Gbps
// InfiniBand]. However, in environments with low bandwidth and high
// latency, this can lead to significant performance degradation."
//
// We sweep the network model from InfiniBand to a WAN link and report the
// per-epoch simulated time of Newton-ADMM (1 round/epoch), GIANT
// (3 rounds), DiSCO (1 + CG rounds) and Synchronous SGD (1 round per
// minibatch) on the MNIST-like dataset.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Interconnect ablation: epoch time vs network speed");
  bench::add_common_options(cli);
  cli.add_int("workers", 8, "number of simulated workers");
  cli.add_int("epochs", 6, "epochs to average over");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Ablation — per-epoch time across interconnects",
                "paper §3 Remark 1 (communication-cost argument)");

  const std::vector<std::string> networks{"ib100", "eth10", "eth1", "wan"};
  const std::vector<std::string> solvers{"newton-admm", "giant", "disco",
                                         "sync-sgd"};
  Table t({"solver", "ib100 (ms)", "eth10 (ms)", "eth1 (ms)", "wan (ms)",
           "wan/ib100"});
  for (const auto& solver : solvers) {
    std::vector<std::string> row{solver};
    double first = 0.0, last = 0.0;
    for (const auto& network : networks) {
      auto cfg = bench::config_from_cli(cli, "mnist");
      cfg.workers = static_cast<int>(cli.get_int("workers"));
      cfg.network = network;
      cfg.lambda = 1e-5;
      cfg.iterations = static_cast<int>(cli.get_int("epochs"));
      const auto tt = runner::make_data(cfg);
      auto cluster = runner::make_cluster(cfg);
      const auto r = runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, nullptr, cfg), cfg);
      row.push_back(Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3));
      if (network == "ib100") first = r.avg_epoch_sim_seconds;
      if (network == "wan") last = r.avg_epoch_sim_seconds;
    }
    row.push_back(Table::fmt(last / first, 1));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nexpected shape: Newton-ADMM's single round per epoch makes it the\n"
      "least network-sensitive solver; SGD (one allreduce per minibatch)\n"
      "and DiSCO (one per CG iteration) degrade the most on slow links.\n");
  return 0;
}
