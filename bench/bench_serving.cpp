// Serving-plane microbenchmarks: batched dispatch vs request-at-a-time.
//
// BM_ServeForward_<b>: score a b-request panel through the fused
// softmax-forward path. "Engine" gathers the b rows into one panel and
// issues ONE gemm + softmax pass (what the serving loop's batch dispatch
// does); "Seed" issues b single-row gemms (immediate dispatch). Items/s
// is requests scored per second, so the engine-vs-seed speedup is the
// real amortization the batching policies buy — the wall-clock analogue
// of the simulated dispatch-overhead model.
//
// BM_LatencySketch_<n>: record n latencies and read p50/p99/p999.
// "Engine" is the O(1)-insert log-bucketed QuantileSketch the server
// uses; "Seed" is the naive exact path (buffer everything, sort per
// readout). Gated in CI by tools/perf_smoke.py against
// BENCH_serving.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/generators.hpp"
#include "la/dense_matrix.hpp"
#include "la/kernels.hpp"
#include "serve/quantile.hpp"

namespace {

using nadmm::la::DenseMatrix;

constexpr std::size_t kPoolRows = 512;
constexpr std::size_t kFeatures = 512;
constexpr int kClasses = 10;

struct Panel {
  DenseMatrix pool;  // request pool, row-major
  DenseMatrix coef;  // p × (C−1) coefficient panel
};

const Panel& panel() {
  static const Panel p = [] {
    const auto tt =
        nadmm::data::make_blobs(kPoolRows, 1, kFeatures, kClasses, 3.0, 1.0, 7);
    const auto view = tt.train.dense_view();
    DenseMatrix pool(kPoolRows, kFeatures);
    for (std::size_t r = 0; r < kPoolRows; ++r) {
      const auto row = view.row(r);
      std::copy(row.begin(), row.end(), pool.row(r).begin());
    }
    DenseMatrix coef(kFeatures, static_cast<std::size_t>(kClasses - 1));
    std::uint64_t s = 0x2545f4914f6cdd1dull;
    for (double& v : coef.data()) {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      v = static_cast<double>(s >> 11) / 9007199254740992.0 - 0.5;
    }
    return Panel{std::move(pool), std::move(coef)};
  }();
  return p;
}

/// Score rows [0, b) of the pool: one fused dispatch ("Engine") or b
/// single-row dispatches ("Seed"). Returns requests scored.
void run_forward(benchmark::State& state, bool batched) {
  const auto b = static_cast<std::size_t>(state.range(0));
  const Panel& p = panel();
  const std::size_t c = static_cast<std::size_t>(kClasses - 1);
  DenseMatrix scores(b, c);
  std::vector<std::int32_t> labels(b, 0);
  DenseMatrix probs(b, c);
  std::vector<double> lse(b);
  DenseMatrix one_score(1, c);
  DenseMatrix one_prob(1, c);
  std::vector<double> one_lse(1);
  for (auto _ : state) {
    if (batched) {
      nadmm::la::kernels::gemm_nn(1.0, p.pool.view(0, b), p.coef, 0.0, scores);
      benchmark::DoNotOptimize(nadmm::la::kernels::softmax_forward(
          scores, {labels.data(), b}, probs, lse));
    } else {
      for (std::size_t r = 0; r < b; ++r) {
        nadmm::la::kernels::gemm_nn(1.0, p.pool.view(r, r + 1), p.coef, 0.0,
                                    one_score);
        benchmark::DoNotOptimize(nadmm::la::kernels::softmax_forward(
            one_score, {labels.data(), 1}, one_prob, one_lse));
      }
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(b));
}

void BM_ServeForward_Engine(benchmark::State& state) {
  run_forward(state, /*batched=*/true);
}

void BM_ServeForward_Seed(benchmark::State& state) {
  run_forward(state, /*batched=*/false);
}

BENCHMARK(BM_ServeForward_Engine)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ServeForward_Seed)->Arg(4)->Arg(16)->Arg(64);

/// Deterministic latency-shaped samples (~[1e-5, 1e-1) s, log-uniform).
std::vector<double> latencies(std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(s >> 11) / 9007199254740992.0;
    v.push_back(1e-5 * (1.0 + 9999.0 * u * u));
  }
  return v;
}

/// Record n latencies, then read the three report percentiles — the
/// per-scenario work of the serving report. "Engine" = QuantileSketch;
/// "Seed" = exact buffer-and-sort.
void run_sketch(benchmark::State& state, bool sketch) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = latencies(n);
  for (auto _ : state) {
    double p50 = 0.0, p99 = 0.0, p999 = 0.0;
    if (sketch) {
      nadmm::serve::QuantileSketch q;
      for (const double v : values) q.add(v);
      p50 = q.quantile(0.50);
      p99 = q.quantile(0.99);
      p999 = q.quantile(0.999);
    } else {
      std::vector<double> buf(values);
      std::sort(buf.begin(), buf.end());
      const auto at = [&](double q) {
        return buf[std::min(buf.size() - 1,
                            static_cast<std::size_t>(
                                q * static_cast<double>(buf.size())))];
      };
      p50 = at(0.50);
      p99 = at(0.99);
      p999 = at(0.999);
    }
    benchmark::DoNotOptimize(p50 + p99 + p999);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_LatencySketch_Engine(benchmark::State& state) {
  run_sketch(state, /*sketch=*/true);
}

void BM_LatencySketch_Seed(benchmark::State& state) {
  run_sketch(state, /*sketch=*/false);
}

BENCHMARK(BM_LatencySketch_Engine)->Arg(65536);
BENCHMARK(BM_LatencySketch_Seed)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
