// Telemetry disabled-mode overhead gate.
//
// Every instrumented hot-path wrapper (la::gemm_nn / la::gemv_t / the
// softmax forward) carries a TELEM_SPAN guard whose disabled path is a
// single relaxed atomic load. This bench runs each wrapper with NO
// tracer installed (`_Engine`) against a local untraced copy of the
// identical body (`_Seed` — same kernel call, same flop credits, no
// span guard), plus a span-churn pair that measures the raw guard cost
// at maximum span frequency. The engine-vs-seed speedup is therefore
// expected to sit at ~1.0; the committed BENCH_telemetry.json baseline
// plus the perf-smoke tolerance (CI runs --tolerance 0.10 — pair noise
// on µs kernels is larger than the guard cost itself) turn "disabled
// telemetry costs <2%" into a regression gate rather than a comment:
// the span-churn pair bounds the absolute guard cost at a few ns,
// orders of magnitude under 2% of any instrumented kernel.
//
// Shapes are deliberately small: the guard cost is per call, so small
// kernels are where any regression would surface first.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdint>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/flops.hpp"
#include "la/kernels.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace nadmm;

void set_threads(std::int64_t threads) {
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(threads));
#else
  static_cast<void>(threads);
#endif
}

la::DenseMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix m(r, c);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

// Untraced copies of the instrumented la:: wrapper bodies: identical
// kernel call and flop credits, no span guard. The pairs must stay in
// lock-step with src/la/dense_matrix.cpp for the ratio to isolate the
// guard alone; noinline keeps the call boundary matched to the
// out-of-line library wrappers.
__attribute__((noinline))
void untraced_gemm_nn(double alpha, la::DenseView a, const la::DenseMatrix& b,
                      double beta, la::DenseMatrix& c) {
  la::kernels::gemm_nn(alpha, a, b, beta, c);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  flops::add(2 * m * k * n);
  flops::add_bytes(8 * (m * k + k * n + flops::output_passes(beta) * m * n));
}

__attribute__((noinline))
void untraced_gemv_t(double alpha, la::DenseView a, std::span<const double> x,
                     double beta, std::span<double> y) {
  la::kernels::gemv_t(alpha, a, x, beta, y);
  const std::size_t k = a.rows(), m = a.cols();
  flops::add(2 * m * k);
  flops::add_bytes(8 * (k * m + k + flops::output_passes(beta) * m));
}

// ------------------------------------------------ small gemm_nn wrapper

template <bool kEngine>
void BM_TelemGemmNN(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 256, p = 64, c = 9;
  const auto a = random_matrix(n, p, 1);
  const auto x = random_matrix(p, c, 2);
  la::DenseMatrix s(n, c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemm_nn(1.0, a, x, 0.0, s);
    } else {
      untraced_gemm_nn(1.0, a, x, 0.0, s);
    }
    benchmark::DoNotOptimize(s.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
}

// -------------------------------------------------- gemv_t wrapper

template <bool kEngine>
void BM_TelemGemvT(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 512, p = 128;
  const auto a = random_matrix(n, p, 3);
  std::vector<double> x(n, 1.0), y(p, 0.0);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemv_t(1.0, a, x, 0.0, y);
    } else {
      untraced_gemv_t(1.0, a, x, 0.0, y);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p));
}

// ------------------------------------- raw guard cost at max frequency

// 256 disabled span guards + instants + counter bumps per iteration vs
// the same trivial workload bare. This is the worst case — nothing to
// amortize the relaxed loads against — so it measures the absolute
// guard cost (~a few ns per span). It is informational only and stays
// out of the committed BENCH_telemetry.json gate: a ratio against an
// empty loop cannot meet a percentage tolerance by construction.
template <bool kEngine>
void BM_TelemSpanChurn(benchmark::State& state) {
  set_threads(state.range(0));
  double acc = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      if constexpr (kEngine) {
        TELEM_SPAN("bench", "churn");
        telem::instant("bench", "tick");
        telem::count("ticks");
        acc += static_cast<double>(i);
      } else {
        acc += static_cast<double>(i);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}

// clang-format off
BENCHMARK_TEMPLATE(BM_TelemGemmNN, true)->Name("BM_TelemGemmNN_Engine")->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_TelemGemmNN, false)->Name("BM_TelemGemmNN_Seed")->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_TelemGemvT, true)->Name("BM_TelemGemvT_Engine")->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_TelemGemvT, false)->Name("BM_TelemGemvT_Seed")->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_TelemSpanChurn, true)->Name("BM_TelemSpanChurn_Engine")->Arg(1)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_TelemSpanChurn, false)->Name("BM_TelemSpanChurn_Seed")->Arg(1)->Unit(benchmark::kMicrosecond);
// clang-format on

}  // namespace

BENCHMARK_MAIN();
