// Figure 4: test accuracy and training objective vs. time, Newton-ADMM
// against Synchronous SGD, on all four datasets, λ = 1e−5.
//
// Paper settings mirrored: 8 workers (16 for E18), SGD batch 128 with the
// best step size from a sweep, Newton-ADMM with the best CG budget from
// {10, 20, 30}. Expected shape: Newton-ADMM reaches SGD-level accuracy in
// substantially less time — paper speedups: HIGGS 22.5x, MNIST 2.48x,
// CIFAR-10 2.06x, E18 3.69x.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Figure 4: Newton-ADMM vs Synchronous SGD");
  bench::add_common_options(cli);
  cli.add_int("epochs", 30, "epochs per solver");
  cli.add_flag("full-sweep", "sweep SGD step sizes 1e-3..1e3 (slower)");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner(
      "Figure 4 — accuracy & objective vs. time, Newton-ADMM vs Sync SGD",
      "paper Figure 4");

  const std::vector<std::string> datasets{"higgs", "mnist", "cifar", "e18"};
  Table summary({"dataset", "solver", "avg epoch (ms)", "final obj",
                 "final acc", "sim time to best-acc*0.95 (s)"});

  for (const auto& dataset : datasets) {
    auto cfg = bench::config_from_cli(cli, dataset);
    cfg.workers = dataset == "e18" ? 16 : 8;  // paper: E18 uses 16 workers
    cfg.lambda = 1e-5;
    cfg.iterations = static_cast<int>(cli.get_int("epochs"));
    const auto tt = runner::make_data(cfg);
    std::printf("\n--- %s: n=%zu p=%zu C=%d, %d workers ---\n",
                dataset.c_str(), tt.train.num_samples(),
                tt.train.num_features(), tt.train.num_classes(), cfg.workers);

    // Newton-ADMM: pick the best CG budget from {10, 20, 30} (paper).
    core::RunResult best_admm;
    for (int cg : {10, 20, 30}) {
      auto acfg = cfg;
      acfg.cg_iterations = cg;
      acfg.cg_tol = 1e-10;  // paper: CG tolerance 1e-10 for this figure
      auto cluster = runner::make_cluster(acfg);
      auto r = runner::run_solver("newton-admm", cluster,
      runner::shard_for_solver("newton-admm", tt.train, &tt.test, acfg), acfg);
      if (best_admm.trace.empty() ||
          r.final_objective < best_admm.final_objective) {
        best_admm = std::move(r);
        best_admm.solver = "newton-admm(cg=" + std::to_string(cg) + ")";
      }
    }

    // Synchronous SGD: batch 128, step-size sweep, keep the best.
    std::vector<double> steps{0.01, 0.1, 0.5, 1.0};
    if (cli.get_flag("full-sweep")) {
      steps = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3};
    }
    core::RunResult best_sgd;
    for (double step : steps) {
      auto scfg = cfg;
      scfg.sgd_batch = 128;
      scfg.sgd_step = step;
      auto cluster = runner::make_cluster(scfg);
      auto r = runner::run_solver("sync-sgd", cluster,
      runner::shard_for_solver("sync-sgd", tt.train, &tt.test, scfg), scfg);
      if (!std::isfinite(r.final_objective)) continue;  // diverged step
      if (best_sgd.trace.empty() ||
          r.final_objective < best_sgd.final_objective) {
        best_sgd = std::move(r);
        best_sgd.solver = "sync-sgd(step=" + Table::fmt(step, 3) + ")";
      }
    }

    for (const auto* r : {&best_admm, &best_sgd}) {
      Table t({"epoch", "sim time (s)", "objective", "test acc"});
      const std::size_t stride = std::max<std::size_t>(1, r->trace.size() / 8);
      for (std::size_t i = 0; i < r->trace.size(); i += stride) {
        const auto& it = r->trace[i];
        t.add_row({Table::fmt_int(it.iteration), Table::fmt(it.sim_seconds, 4),
                   Table::fmt(it.objective, 4),
                   Table::fmt(it.test_accuracy, 4)});
      }
      std::printf("%s:\n", r->solver.c_str());
      t.print();
      bench::maybe_write_csv(cli, *r, "fig4_" + dataset + "_" + r->solver);
    }

    // Time for each solver to reach 95% of the better final accuracy.
    const double acc_target =
        0.95 * std::max(best_admm.final_test_accuracy,
                        best_sgd.final_test_accuracy);
    auto time_to_acc = [&](const core::RunResult& r) {
      for (const auto& it : r.trace) {
        if (it.test_accuracy >= acc_target) return it.sim_seconds;
      }
      return -1.0;
    };
    for (const auto* r : {&best_admm, &best_sgd}) {
      const double t_hit = time_to_acc(*r);
      summary.add_row({dataset, r->solver,
                       Table::fmt(r->avg_epoch_sim_seconds * 1e3, 3),
                       Table::fmt(r->final_objective, 4),
                       Table::fmt(r->final_test_accuracy, 4),
                       t_hit < 0 ? "not reached" : Table::fmt(t_hit, 4)});
    }
  }
  std::printf("\nsummary:\n");
  summary.print();
  std::printf(
      "\nexpected shape: Newton-ADMM reaches SGD-level accuracy in\n"
      "substantially less simulated time on every dataset, with the\n"
      "largest gap on the binary HIGGS-like problem (paper: 22.5x).\n");
  return 0;
}
