// Ablation (paper §2.2): the paper adopts Spectral Penalty Selection
// because "Residual Balancing ... is still not effective in practice"
// while SPS "yields significant improvement in the efficiency of ADMM".
//
// The paper's claim is a *smaller hyper-parameter space*: with SPS, the
// initial penalty ρ₀ barely matters, whereas fixed-ρ ADMM lives or dies
// by it. We sweep ρ₀ across four orders of magnitude and report the
// final objective after a fixed epoch budget for each policy.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Penalty-policy ablation: robustness to rho0");
  bench::add_common_options(cli);
  cli.add_int("workers", 8, "number of simulated workers");
  cli.add_int("epochs", 60, "fixed epoch budget per run");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Ablation — ADMM penalty policies (fixed | rb | sps)",
                "paper §2.2 (smaller hyper-parameter space via SPS)");

  for (const char* dataset : {"mnist", "cifar"}) {
    auto cfg = bench::config_from_cli(cli, dataset);
    // Half the default size: this ablation runs 12 full-budget solves.
    cfg.n_train /= 2;
    cfg.workers = static_cast<int>(cli.get_int("workers"));
    cfg.lambda = 1e-5;
    cfg.iterations = static_cast<int>(cli.get_int("epochs"));
    const auto tt = runner::make_data(cfg);
    std::printf("\n--- %s: final objective after %d epochs ---\n", dataset,
                cfg.iterations);

    Table t({"rho0", "fixed", "rb", "sps", "sps mean rho at exit"});
    for (double rho0 : {0.01, 1.0, 100.0, 10000.0}) {
      std::vector<std::string> row{Table::fmt(rho0, 2)};
      double sps_rho = 0.0;
      for (const char* policy : {"fixed", "rb", "sps"}) {
        auto run_cfg = cfg;
        run_cfg.penalty = policy;
        run_cfg.rho0 = rho0;
        run_cfg.evaluate_accuracy = false;
        auto cluster = runner::make_cluster(run_cfg);
        const auto r = runner::run_solver("newton-admm", cluster,
      runner::shard_for_solver("newton-admm", tt.train, nullptr, run_cfg), run_cfg);
        row.push_back(Table::fmt(r.final_objective, 3));
        if (std::string(policy) == "sps") sps_rho = r.trace.back().rho_mean;
      }
      row.push_back(Table::fmt(sps_rho, 3));
      t.add_row(std::move(row));
    }
    t.print();
  }
  std::printf(
      "\nexpected shape: the fixed-rho column varies by orders of magnitude\n"
      "across rho0 (the tuning burden), while SPS converges to a similar\n"
      "objective from every rho0 — the paper's 'significantly smaller\n"
      "hyper-parameter space' claim. RB sits in between.\n");
  return 0;
}
