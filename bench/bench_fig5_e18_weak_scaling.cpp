// Figure 5: weak scaling on the E18-like dataset with 16 workers, for
// λ = 1e−3 and λ = 1e−5 — objective vs. epoch and average epoch time for
// Newton-ADMM and GIANT.
//
// This is the high-dimensional sparse regime (the real E18 has p=27,998;
// we scale p down but keep the CSR pipeline): forming the Hessian is
// impossible, so both methods are Hessian-free, and Newton-ADMM's single
// communication round keeps its epochs cheaper (paper: 1.87 s vs 2.44 s
// per epoch) with faster convergence at both λ.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Figure 5: E18-like weak scaling, 16 workers");
  bench::add_common_options(cli);
  cli.add_int("workers", 16, "number of simulated workers");
  cli.add_int("epochs", 25, "epochs per run");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Figure 5 — E18-like, 16 workers, lambda in {1e-3, 1e-5}",
                "paper Figure 5");

  Table summary({"lambda", "solver", "avg epoch (ms)", "final objective",
                 "final test acc"});
  for (double lambda : {1e-3, 1e-5}) {
    auto cfg = bench::config_from_cli(cli, "e18");
    cfg.workers = static_cast<int>(cli.get_int("workers"));
    cfg.lambda = lambda;
    cfg.iterations = static_cast<int>(cli.get_int("epochs"));
    // Weak scaling: per-worker shard fixed; total grows with workers.
    cfg.n_train = cfg.n_train / 4 * static_cast<std::size_t>(cfg.workers);
    const auto tt = runner::make_data(cfg);
    std::printf("\n--- lambda=%g: n=%zu p=%zu C=%d density=%.3f ---\n", lambda,
                tt.train.num_samples(), tt.train.num_features(),
                tt.train.num_classes(), tt.train.feature_density());

    for (const char* solver : {"newton-admm", "giant"}) {
      auto cluster = runner::make_cluster(cfg);
      const auto r =
          runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, cfg), cfg);
      Table t({"epoch", "sim time (s)", "objective", "test acc"});
      const std::size_t stride = std::max<std::size_t>(1, r.trace.size() / 8);
      for (std::size_t i = 0; i < r.trace.size(); i += stride) {
        const auto& it = r.trace[i];
        t.add_row({Table::fmt_int(it.iteration), Table::fmt(it.sim_seconds, 4),
                   Table::fmt(it.objective, 4),
                   Table::fmt(it.test_accuracy, 4)});
      }
      std::printf("%s:\n", solver);
      t.print();
      summary.add_row({Table::fmt(lambda, 5), solver,
                       Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3),
                       Table::fmt(r.final_objective, 4),
                       Table::fmt(r.final_test_accuracy, 4)});
      bench::maybe_write_csv(cli, r,
                             std::string("fig5_") + solver + "_lambda" +
                                 Table::fmt(lambda, 5));
    }
  }
  std::printf("\nsummary:\n");
  summary.print();
  std::printf(
      "\nexpected shape: Newton-ADMM's epochs are cheaper than GIANT's and\n"
      "it converges faster at both lambda values (paper Figure 5).\n");
  return 0;
}
