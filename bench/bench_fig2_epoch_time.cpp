// Figure 2: average epoch time under strong scaling (s1–s8: fixed total
// problem, growing worker count) and weak scaling (w1–w8: fixed per-worker
// shard) for Newton-ADMM and GIANT on all four datasets.
//
// Expected shape (paper): strong scaling roughly halves epoch time as the
// worker count doubles (HIGGS near-ideal); weak scaling keeps epoch time
// roughly constant.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Figure 2: avg epoch time, strong & weak scaling");
  bench::add_common_options(cli);
  cli.add_int("epochs", 8, "epochs to average over");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Figure 2 — average epoch time (ms), strong & weak scaling",
                "paper Figure 2");

  const std::vector<int> worker_counts{1, 2, 4, 8};
  const std::vector<std::string> datasets{"higgs", "mnist", "cifar", "e18"};
  const std::vector<std::string> solvers{"newton-admm", "giant"};

  for (const char* mode : {"strong", "weak"}) {
    const bool weak = std::string(mode) == "weak";
    std::printf("\n=== %s scaling ===\n", mode);
    Table t({"solver", "dataset", weak ? "n / worker" : "n (total)", "w1",
             "w2", "w4", "w8"});
    for (const auto& solver : solvers) {
      for (const auto& dataset : datasets) {
        std::vector<std::string> row{solver, dataset, ""};
        for (int workers : worker_counts) {
          auto cfg = bench::config_from_cli(cli, dataset);
          cfg.workers = workers;
          cfg.lambda = 1e-5;
          cfg.iterations = static_cast<int>(cli.get_int("epochs"));
          if (weak) {
            // Fixed per-worker shard (a quarter of the strong-scaling
            // total, so the 8-worker case stays within budget).
            const std::size_t shard = cfg.n_train / 4;
            cfg.n_train = shard * static_cast<std::size_t>(workers);
            row[2] = Table::fmt_int(static_cast<long long>(shard));
          }
          const auto tt = runner::make_data(cfg);
          auto cluster = runner::make_cluster(cfg);
          const auto r = runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, nullptr, cfg), cfg);
          if (!weak) {
            row[2] = Table::fmt_int(
                static_cast<long long>(tt.train.num_samples()));
          }
          row.push_back(Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3));
          bench::maybe_write_csv(
              cli, r, std::string("fig2_") + mode + "_" + solver + "_" +
                          dataset + "_w" + std::to_string(workers));
        }
        t.add_row(std::move(row));
      }
    }
    t.print();
  }
  std::printf(
      "\nexpected shape: strong scaling ~halves epoch time per worker\n"
      "doubling; weak scaling stays roughly flat (paper Figure 2).\n");
  return 0;
}
