// Coordinator merge throughput for the async runtime.
//
// The asynchronous coordinator folds one worker's contribution into the
// eq. 7 z-update on *every* message arrival, so the merge is the hot
// path of the whole event loop. core::ConsensusState keeps running sums
// and delta-updates them in O(dim) per arrival ("Engine"); the "Seed"
// baseline is the synchronous solver's root merge — recompute z from all
// N stored contributions from scratch, O(N·dim) per arrival. The
// engine-vs-seed speedup (≈ N/3) is a same-machine ratio, gated in CI by
// tools/perf_smoke.py against BENCH_async.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/admm_worker.hpp"
#include "la/vector_ops.hpp"

namespace {

constexpr std::size_t kDim = 8192;  // MNIST-like p·(C−1)
constexpr double kLambda = 1e-5;

/// One deterministic packed contribution [c ; ρ] per worker.
std::vector<std::vector<double>> make_contributions(int workers) {
  std::vector<std::vector<double>> packed(
      static_cast<std::size_t>(workers), std::vector<double>(kDim + 1, 0.0));
  for (int w = 0; w < workers; ++w) {
    auto& c = packed[static_cast<std::size_t>(w)];
    for (std::size_t j = 0; j < kDim; ++j) {
      c[j] = 0.25 * static_cast<double>(w + 1) +
             1e-4 * static_cast<double>(j % 97);
    }
    c[kDim] = 1.0 + 0.1 * static_cast<double>(w);
  }
  return packed;
}

void BM_CoordinatorMerge_Engine(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto packed = make_contributions(workers);
  nadmm::core::ConsensusState acc(workers, kDim, kLambda);
  std::vector<double> z(kDim, 0.0);
  int w = 0;
  for (auto _ : state) {
    acc.apply(w, packed[static_cast<std::size_t>(w)]);
    acc.compute_z(z);
    benchmark::DoNotOptimize(z.data());
    w = (w + 1) % workers;
  }
  state.SetItemsProcessed(state.iterations());
}

/// The pre-async root merge, replayed per arrival: zero z, walk every
/// worker's stored contribution, rescale.
void BM_CoordinatorMerge_Seed(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  auto stored = make_contributions(workers);
  std::vector<double> z(kDim, 0.0);
  int w = 0;
  for (auto _ : state) {
    nadmm::la::fill(z, 0.0);
    double rho_sum = 0.0;
    for (int r = 0; r < workers; ++r) {
      const auto& c = stored[static_cast<std::size_t>(r)];
      for (std::size_t j = 0; j < kDim; ++j) z[j] += c[j];
      rho_sum += c[kDim];
    }
    nadmm::la::scal(1.0 / (kLambda + rho_sum), z);
    benchmark::DoNotOptimize(z.data());
    w = (w + 1) % workers;
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_CoordinatorMerge_Engine)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_CoordinatorMerge_Seed)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
