// Measures what the DatasetProvider buys a sweep: the quick.sweep-shaped
// grid (3 solvers × 2 datasets × 2 worker counts) executed once with the
// dataset cache disabled (--cache-budget=0 semantics: every scenario
// regenerates its dataset, the pre-cache behavior) and once with the
// default budget (scenarios differing only in solver/workers share one
// copy). Writes the committed BENCH_sweep_cache.json baseline.
//
//   ./build/bench_sweep_cache --out=BENCH_sweep_cache.json
#include <chrono>
#include <cstdio>
#include <fstream>

#include "runner/sweep.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"

using namespace nadmm;

namespace {

runner::SweepSpec quick_spec(double scale) {
  runner::SweepSpec spec;
  spec.solvers = {"newton-admm", "giant", "sync-sgd"};
  spec.datasets = {"blobs", "higgs"};
  spec.workers = {2, 4};
  spec.base.n_train = static_cast<std::size_t>(600 * scale);
  spec.base.n_test = static_cast<std::size_t>(150 * scale);
  spec.base.iterations = 8;
  return spec;
}

struct Measurement {
  double wall_seconds = 0.0;
  runner::SweepReport report;
};

Measurement timed_sweep(const runner::SweepSpec& spec, std::size_t budget,
                        int jobs) {
  runner::SweepOptions options;
  options.jobs = jobs;
  options.cache_budget = budget;
  const auto start = std::chrono::steady_clock::now();
  Measurement m;
  m.report = run_sweep(spec, options);
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  NADMM_CHECK(m.report.failures() == 0, "bench sweep had failing scenarios");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_sweep_cache — sweep wall time, dataset cache off vs on");
  cli.add_double("scale", 1.0, "dataset size multiplier");
  cli.add_int("jobs", 4, "scheduler threads");
  cli.add_int("repeats", 3, "keep the fastest of N runs per setting");
  cli.add_string("out", "BENCH_sweep_cache.json", "baseline JSON path");
  if (!cli.parse(argc, argv)) return 0;

  const auto spec = quick_spec(cli.get_double("scale"));
  const int jobs = static_cast<int>(cli.get_int("jobs"));
  const int repeats = static_cast<int>(cli.get_int("repeats"));
  NADMM_CHECK(repeats >= 1, "--repeats must be at least 1");

  Measurement off, on;
  for (int r = 0; r < repeats; ++r) {
    auto m_off = timed_sweep(spec, 0, jobs);
    if (r == 0 || m_off.wall_seconds < off.wall_seconds) off = std::move(m_off);
    auto m_on = timed_sweep(
        spec, data::DatasetProvider::kDefaultByteBudget, jobs);
    if (r == 0 || m_on.wall_seconds < on.wall_seconds) on = std::move(m_on);
  }

  const std::size_t scenarios = on.report.outcomes.size();
  const double speedup =
      on.wall_seconds > 0.0 ? off.wall_seconds / on.wall_seconds : 0.0;
  std::printf("sweep of %zu scenarios (%d jobs, best of %d):\n", scenarios,
              jobs, repeats);
  std::printf("  cache off: %.3f s (every scenario regenerates)\n",
              off.wall_seconds);
  std::printf("  cache on:  %.3f s (%zu generated, %zu shared)\n",
              on.wall_seconds, on.report.cache.generations,
              on.report.cache.hits);
  std::printf("  speedup:   %.2fx\n", speedup);

  const std::string out = cli.get_string("out");
  std::ofstream json(out);
  if (!json) throw RuntimeError("cannot open " + out);
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"sweep_cache\",\n"
      "  \"grid\": \"quick.sweep (3 solvers x 2 datasets x 2 worker counts)\",\n"
      "  \"scenarios\": %zu,\n"
      "  \"jobs\": %d,\n"
      "  \"repeats\": %d,\n"
      "  \"cache_off_wall_seconds\": %.3f,\n"
      "  \"cache_on_wall_seconds\": %.3f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"datasets_generated_with_cache\": %zu,\n"
      "  \"datasets_shared_with_cache\": %zu\n"
      "}\n",
      scenarios, jobs, repeats, off.wall_seconds, on.wall_seconds, speedup,
      on.report.cache.generations, on.report.cache.hits);
  json << buf;
  std::printf("baseline written to %s\n", out.c_str());
  return 0;
}
