// Figure 3: speed-up ratio of Newton-ADMM over GIANT — the fraction of
// (simulated) time GIANT needs to reach relative objective θ < 0.05 over
// the time Newton-ADMM needs, under strong and weak scaling.
//
// θ = (F(x_k) − F(x*)) / F(x*), with x* from a high-precision single-node
// Newton solve (core::solve_reference), exactly as the paper defines it.
// As in the paper, E18 is excluded from weak scaling (the aggregate
// dataset would be too large for the single-node reference).
//
// Expected shape: ratio ≥ 1 everywhere; roughly constant modest ratio on
// the well-conditioned HIGGS; growing ratio with worker count on the
// ill-conditioned CIFAR.
#include "bench_util.hpp"

#include "core/reference.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Figure 3: Newton-ADMM vs GIANT speed-up to theta < 0.05");
  bench::add_common_options(cli);
  cli.add_int("max-epochs", 120, "iteration cap while chasing theta");
  cli.add_double("theta", 0.05, "relative objective target");
  cli.add_double("fig3-scale", 0.3,
                 "extra dataset shrink for this bench (time-to-theta runs "
                 "many epochs; the single-node reference is also costly)");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Figure 3 — speed-up ratio (time_GIANT / time_Newton-ADMM)",
                "paper Figure 3");

  const std::vector<int> worker_counts{1, 2, 4, 8};
  const double theta = cli.get_double("theta");

  for (const char* mode : {"strong", "weak"}) {
    std::printf("\n=== %s scaling ===\n", mode);
    std::vector<std::string> datasets{"higgs", "mnist", "cifar"};
    if (std::string(mode) == "strong") datasets.push_back("e18");

    Table t({"dataset", "workers", "t_admm (s)", "t_giant (s)", "speed-up"});
    for (const auto& dataset : datasets) {
      for (int workers : worker_counts) {
        auto cfg = bench::config_from_cli(cli, dataset);
        cfg.n_train = static_cast<std::size_t>(
            static_cast<double>(cfg.n_train) * cli.get_double("fig3-scale"));
        cfg.workers = workers;
        cfg.lambda = 1e-5;
        cfg.iterations = static_cast<int>(cli.get_int("max-epochs"));
        if (std::string(mode) == "weak") {
          cfg.n_train = cfg.n_train / 4 * static_cast<std::size_t>(workers);
        }
        const auto tt = runner::make_data(cfg);
        // Reference optimum for theta (single-node, high precision).
        const auto ref = core::solve_reference(tt.train, cfg.lambda, 1e-8, 60);
        const double target = ref.objective * (1.0 + theta);

        cfg.objective_target = target;
        cfg.evaluate_accuracy = false;
        auto c1 = runner::make_cluster(cfg);
        const auto admm =
            runner::run_solver("newton-admm", c1,
      runner::shard_for_solver("newton-admm", tt.train, nullptr, cfg), cfg);

        auto c2 = runner::make_cluster(cfg);
        const auto gnt =
            runner::run_solver("giant", c2,
      runner::shard_for_solver("giant", tt.train, nullptr, cfg), cfg);

        const double t_admm = admm.sim_time_to_objective(target);
        const double t_giant = gnt.sim_time_to_objective(target);
        std::string ratio = "n/a";
        if (t_admm > 0 && t_giant > 0) {
          ratio = Table::fmt(t_giant / t_admm, 2);
        } else if (t_admm > 0 && gnt.iterations < cfg.iterations) {
          // GIANT's line search stagnated before the target: it will never
          // reach theta, so the speed-up is unbounded.
          ratio = "inf (GIANT stalled)";
        } else if (t_admm > 0) {
          // Built in two steps: operator+(const char*, string&&) trips a
          // GCC 12 -Wrestrict false positive at -O2.
          ratio = ">";
          ratio += Table::fmt(gnt.total_sim_seconds / t_admm, 1);
        }
        t.add_row({dataset, std::to_string(workers),
                   t_admm < 0 ? "not reached" : Table::fmt(t_admm, 4),
                   t_giant < 0 ? "not reached" : Table::fmt(t_giant, 4),
                   ratio});
      }
    }
    t.print();
  }
  std::printf(
      "\nexpected shape: speed-up >= ~1 and roughly flat on the\n"
      "well-conditioned HIGGS (paper: constant 1.3x). Caveat for the\n"
      "multiclass datasets: at bench scale n is comparable to the\n"
      "parameter count (C-1)p, so the optimum interpolates and F* ~ 0,\n"
      "making theta stricter than at paper scale; consensus ADMM's tail\n"
      "is slow in that regime and ratios can dip below 1 (see\n"
      "EXPERIMENTS.md). Run with --scale >= 4 to leave that regime.\n");
  return 0;
}
