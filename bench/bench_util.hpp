// Shared helpers for the bench binaries (one binary per paper table /
// figure — see DESIGN.md §4). Each binary prints the same rows/series the
// paper reports, on scaled-down synthetic datasets, and is also runnable
// with --full for larger sizes.
#pragma once

#include <cstdio>
#include <string>

#include "runner/harness.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace nadmm::bench {

/// Default scaled-down sample counts per dataset (CPU-minutes budget).
/// --scale multiplies these.
struct BenchScale {
  double factor = 1.0;

  // Defaults are chosen so that, at the P100-like device rating, per-epoch
  // compute dominates the one-round communication at 8 workers — the same
  // regime as the paper's full-size datasets. Smaller values make the
  // high-dimensional problems latency-bound, which inverts Figure 2.
  [[nodiscard]] std::size_t n_train(const std::string& dataset) const {
    double base = 8000;
    if (dataset == "higgs") base = 400000;
    if (dataset == "mnist") base = 12000;
    if (dataset == "cifar") base = 2400;
    if (dataset == "e18") base = 20000;
    return static_cast<std::size_t>(base * factor);
  }
  [[nodiscard]] std::size_t n_test(const std::string& dataset) const {
    return std::max<std::size_t>(200, n_train(dataset) / 10);
  }
  [[nodiscard]] std::size_t e18_features() const {
    // Cap above: dim explodes as (C−1)p. Floor below: the e18 generator
    // needs p ≥ 64 for its marker-gene blocks.
    return std::max<std::size_t>(
        64, static_cast<std::size_t>(1400 * std::min(1.0, factor) + 0.5));
  }
};

/// Common CLI options shared by all bench binaries.
inline void add_common_options(CliParser& cli) {
  cli.add_double("scale", 1.0, "dataset size multiplier");
  cli.add_int("seed", 42, "generator seed");
  cli.add_string("device", "p100",
                 "device model (p100|cpu|<gflops>[:<gbytes_per_s>])");
  cli.add_string("network", "ib100", "network model (ib100|eth10|eth1|wan|ideal)");
  cli.add_string("csv-dir", "", "if set, write per-run trace CSVs here");
}

inline runner::ExperimentConfig config_from_cli(const CliParser& cli,
                                                const std::string& dataset) {
  BenchScale scale{cli.get_double("scale")};
  runner::ExperimentConfig c;
  c.dataset = dataset;
  c.n_train = scale.n_train(dataset);
  c.n_test = scale.n_test(dataset);
  c.e18_features = scale.e18_features();
  c.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  c.device = cli.get_string("device");
  c.network = cli.get_string("network");
  return c;
}

/// Optionally dump a run's trace CSV next to the figure data.
inline void maybe_write_csv(const CliParser& cli, const core::RunResult& r,
                            const std::string& tag) {
  const std::string dir = cli.get_string("csv-dir");
  if (dir.empty()) return;
  runner::write_trace_csv(r, dir + "/" + tag + ".csv");
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace nadmm::bench
