// Wire-layer throughput for the fault-tolerant channel.
//
// Two engine-vs-seed pairs feed BENCH_wire.json through the CI
// perf-smoke gate (tools/perf_smoke.py):
//
//   BM_WireCodec_{Engine,Seed}/N — encode+decode one data frame with N
//   payload doubles. The engine is the shipping codec (comm/wire.hpp:
//   bulk little-endian writes through support/binio.hpp); the seed is a
//   byte-at-a-time reference codec producing the identical layout, the
//   naive implementation the bulk writer replaced. The /N argument is a
//   payload size, not a thread count.
//
//   BM_ChannelLoss_{Engine,Seed}/P — drive a fixed request-response
//   workload through the async engine with the reliable channel at P%
//   frame loss (engine) vs the bare in-memory engine with no channel at
//   all (seed). The ratio is the wall-clock overhead of framing, acks,
//   timers, and retransmission at that loss rate — the channel's
//   bookkeeping cost, since virtual time is free. The /P argument is a
//   loss percentage.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "comm/async.hpp"
#include "comm/fault.hpp"
#include "comm/network_model.hpp"
#include "comm/wire.hpp"
#include "la/device.hpp"

namespace {

namespace comm = nadmm::comm;
namespace wire = nadmm::comm::wire;

wire::Frame make_frame(std::int64_t doubles) {
  wire::Frame f;
  f.kind = wire::FrameKind::kData;
  f.from = 3;
  f.to = 0;
  f.tag = 7;
  f.link_seq = 41;
  f.payload.resize(static_cast<std::size_t>(doubles));
  for (std::size_t i = 0; i < f.payload.size(); ++i) {
    f.payload[i] = 1e-3 * static_cast<double>(i % 101) - 0.05;
  }
  return f;
}

void BM_WireCodec_Engine(benchmark::State& state) {
  const wire::Frame frame = make_frame(state.range(0));
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes = wire::encode(frame);
    wire::Frame back = wire::decode(bytes);
    benchmark::DoNotOptimize(back.payload.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(wire::frame_bytes(frame.payload.size())));
}

// ------------------------------------------------------------------
// Seed: a field-at-a-time, byte-at-a-time reference codec emitting the
// exact same layout (same magic, checksum, byte order) with scalar
// shifts instead of bulk memcpy — what a first straightforward
// implementation looks like before the binio bulk path.
// ------------------------------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::uint8_t> reference_encode(const wire::Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(wire::frame_bytes(frame.payload.size()));
  put_u32(out, wire::kMagic);
  put_u16(out, wire::kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.kind));
  put_u32(out, static_cast<std::uint32_t>(frame.from));
  put_u32(out, static_cast<std::uint32_t>(frame.to));
  put_u32(out, static_cast<std::uint32_t>(frame.tag));
  put_u32(out, 0);  // reserved
  put_u64(out, frame.link_seq);
  put_u64(out, frame.payload.size());
  put_u64(out, 0);  // checksum placeholder
  for (const double d : frame.payload) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, 8);
    put_u64(out, bits);
  }
  std::uint64_t sum = fnv1a(out.data(), 40);
  sum = fnv1a(out.data() + wire::kHeaderBytes,
              out.size() - wire::kHeaderBytes, sum);
  for (int i = 0; i < 8; ++i) out[40 + std::size_t(i)] = std::uint8_t(sum >> (8 * i));
  return out;
}

wire::Frame reference_decode(const std::vector<std::uint8_t>& bytes) {
  wire::Frame f;
  const std::uint8_t* p = bytes.data();
  f.kind = static_cast<wire::FrameKind>(p[6] | (std::uint16_t(p[7]) << 8));
  f.from = int(p[8] | (std::uint32_t(p[9]) << 8) | (std::uint32_t(p[10]) << 16) |
               (std::uint32_t(p[11]) << 24));
  f.to = int(p[12] | (std::uint32_t(p[13]) << 8) | (std::uint32_t(p[14]) << 16) |
             (std::uint32_t(p[15]) << 24));
  f.tag = int(p[16] | (std::uint32_t(p[17]) << 8) | (std::uint32_t(p[18]) << 16) |
              (std::uint32_t(p[19]) << 24));
  f.link_seq = get_u64(p + 24);
  const std::uint64_t len = get_u64(p + 32);
  std::uint8_t header[wire::kHeaderBytes];
  std::memcpy(header, p, wire::kHeaderBytes);
  std::memset(header + 40, 0, 8);
  std::uint64_t sum = fnv1a(header, 40);
  sum = fnv1a(p + wire::kHeaderBytes, bytes.size() - wire::kHeaderBytes, sum);
  if (sum != get_u64(p + 40)) f.tag = -1;  // mirror the checksum check
  f.payload.resize(static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint64_t bits = get_u64(p + wire::kHeaderBytes + 8 * i);
    std::memcpy(&f.payload[i], &bits, 8);
  }
  return f;
}

void BM_WireCodec_Seed(benchmark::State& state) {
  const wire::Frame frame = make_frame(state.range(0));
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes = reference_encode(frame);
    wire::Frame back = reference_decode(bytes);
    benchmark::DoNotOptimize(back.payload.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(wire::frame_bytes(frame.payload.size())));
}

// ------------------------------------------------------------------
// Channel overhead under loss: fixed ping-pong workload, wall time of
// the whole simulated run. Virtual time is free, so items/s measures
// the channel's bookkeeping (framing, acks, timers, retransmits).
// ------------------------------------------------------------------

constexpr int kPings = 64;
constexpr std::size_t kPingDoubles = 256;

std::uint64_t run_pingpong(bool channel, double loss) {
  comm::NetworkModel net{"bench", 1e-4, 1e8};
  comm::AsyncEngine engine({{"a", 1.0}, {"b", 1.0}}, net, /*omp_threads=*/1);
  if (channel) {
    comm::FaultSpec spec;
    if (loss > 0.0) {
      spec = comm::FaultSpec::parse("drop:" + std::to_string(loss));
    }
    engine.set_faults(spec, /*seed=*/23);
  }
  engine.run(
      [](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          ctx.send(1, /*tag=*/0, std::vector<double>(kPingDoubles, 1.0));
        }
      },
      [](comm::AsyncRank& ctx, const comm::AsyncMessage& msg) {
        if (msg.tag >= kPings) return;
        ctx.send(msg.from, msg.tag + 1,
                 std::vector<double>(kPingDoubles, double(msg.tag)));
      });
  return engine.messages_delivered();
}

void BM_ChannelLoss_Engine(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    delivered = run_pingpong(/*channel=*/true, loss);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}

void BM_ChannelLoss_Seed(benchmark::State& state) {
  // Bare engine: same app workload, no framing, no channel. The /P
  // argument is unused (the seed has no loss knob) but kept so the
  // perf-smoke gate pairs each loss level with its baseline.
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    delivered = run_pingpong(/*channel=*/false, 0.0);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(delivered));
}

}  // namespace

BENCHMARK(BM_WireCodec_Engine)->Arg(16)->Arg(1024)->Arg(16384);
BENCHMARK(BM_WireCodec_Seed)->Arg(16)->Arg(1024)->Arg(16384);
BENCHMARK(BM_ChannelLoss_Engine)->Arg(0)->Arg(1)->Arg(5);
BENCHMARK(BM_ChannelLoss_Seed)->Arg(0)->Arg(1)->Arg(5);

BENCHMARK_MAIN();
