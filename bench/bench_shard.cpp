// Shard setup cost: zero-copy rank views vs the seed's per-rank copies.
//
// The shard-native data plane hands every rank an O(1) row-range view of
// the shared dataset ("Engine", data::shard_dataset under a contiguous
// plan); the seed materialized one owning copy per rank
// ("Seed", data::shard_contiguous). The benchmark argument is the rank
// count N: each iteration sets up ALL N shards — the full per-scenario
// setup the sweep scheduler pays — so items/s is scenarios-set-up per
// second and the engine-vs-seed speedup is the data-plane win. Byte
// counters report the resident bytes each path adds on top of the full
// dataset (0 for views). Gated in CI by tools/perf_smoke.py against
// BENCH_shard.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "data/generators.hpp"
#include "data/partition.hpp"

namespace {

using nadmm::data::Dataset;
using nadmm::data::ShardPlan;
using nadmm::data::TrainTest;

constexpr std::size_t kDenseRows = 20'000;
constexpr std::size_t kDenseCols = 256;   // MNIST-like shard shape
constexpr std::size_t kSparseRows = 6'000;
constexpr std::size_t kSparseCols = 4'000; // E18-like wide sparse shard

const TrainTest& dense_data() {
  static const TrainTest tt =
      nadmm::data::make_blobs(kDenseRows, 1, kDenseCols, 10, 3.0, 1.0, 7);
  return tt;
}

const TrainTest& sparse_data() {
  static const TrainTest tt =
      nadmm::data::make_e18_like(kSparseRows, 1, kSparseCols, 7);
  return tt;
}

void run_shards(benchmark::State& state, const Dataset& full, bool views) {
  const int parts = static_cast<int>(state.range(0));
  ShardPlan plan;
  plan.parts = parts;
  std::size_t shard_bytes = 0;
  for (auto _ : state) {
    std::vector<Dataset> shards;
    shards.reserve(static_cast<std::size_t>(parts));
    shard_bytes = 0;
    for (int r = 0; r < parts; ++r) {
      shards.push_back(views ? nadmm::data::shard_dataset(full, plan, r)
                             : nadmm::data::shard_contiguous(full, parts, r));
      shard_bytes += shards.back().approx_bytes();
      benchmark::DoNotOptimize(shards.back().num_samples());
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shard_bytes"] =
      benchmark::Counter(static_cast<double>(shard_bytes));
  state.counters["full_bytes"] =
      benchmark::Counter(static_cast<double>(full.approx_bytes()));
}

void BM_ShardDense_Engine(benchmark::State& state) {
  run_shards(state, dense_data().train, /*views=*/true);
}

void BM_ShardDense_Seed(benchmark::State& state) {
  run_shards(state, dense_data().train, /*views=*/false);
}

void BM_ShardCsr_Engine(benchmark::State& state) {
  run_shards(state, sparse_data().train, /*views=*/true);
}

void BM_ShardCsr_Seed(benchmark::State& state) {
  run_shards(state, sparse_data().train, /*views=*/false);
}

}  // namespace

// The /N suffix is the rank count (not a thread count); perf_smoke pairs
// Engine/Seed entries by it like any other benchmark key.
BENCHMARK(BM_ShardDense_Engine)->Arg(4)->Arg(16);
BENCHMARK(BM_ShardDense_Seed)->Arg(4)->Arg(16);
BENCHMARK(BM_ShardCsr_Engine)->Arg(4)->Arg(16);
BENCHMARK(BM_ShardCsr_Seed)->Arg(4)->Arg(16);

BENCHMARK_MAIN();
