// Figure 1: training objective vs. time for Newton-ADMM, GIANT,
// InexactDANE and AIDE on the MNIST-like dataset, λ = 1e−5.
//
// Paper settings mirrored: 10 CG iterations at tol 1e−4 for both
// Newton-type methods, 10 line-search iterations, 8 workers; DANE/AIDE
// use η=1, µ=0 and an SVRG inner solver, and run far fewer epochs
// because each epoch is orders of magnitude slower — the phenomenon this
// figure demonstrates ("InexactDANE takes around an hour and a half to
// reach what Newton-ADMM reaches in 2.4 seconds").
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Figure 1: solver comparison on MNIST-like data");
  bench::add_common_options(cli);
  cli.add_int("workers", 8, "number of simulated workers");
  cli.add_int("epochs", 40, "epochs for Newton-ADMM / GIANT");
  cli.add_int("dane-epochs", 4, "epochs for InexactDANE / AIDE");
  cli.add_int("svrg-outer", 10, "SVRG outer iterations inside DANE");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Figure 1 — objective vs. time, MNIST-like, lambda=1e-5",
                "paper Figure 1");

  auto cfg = bench::config_from_cli(cli, "mnist");
  cfg.workers = static_cast<int>(cli.get_int("workers"));
  cfg.lambda = 1e-5;
  cfg.iterations = static_cast<int>(cli.get_int("epochs"));
  const auto tt = runner::make_data(cfg);
  std::printf("dataset: n=%zu p=%zu C=%d, %d workers\n\n",
              tt.train.num_samples(), tt.train.num_features(),
              tt.train.num_classes(), cfg.workers);

  std::vector<core::RunResult> results;
  for (const char* solver : {"newton-admm", "giant"}) {
    auto cluster = runner::make_cluster(cfg);
    results.push_back(
        runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, cfg), cfg));
  }
  for (const char* solver : {"inexact-dane", "aide"}) {
    auto dcfg = cfg;
    dcfg.dane_epochs = static_cast<int>(cli.get_int("dane-epochs"));
    // dane_options caps at min(iterations, dane_epochs); --dane-epochs is
    // this bench's explicit budget, so it must win over --epochs.
    dcfg.iterations = dcfg.dane_epochs;
    dcfg.svrg_outer = static_cast<int>(cli.get_int("svrg-outer"));
    auto cluster = runner::make_cluster(dcfg);
    results.push_back(
        runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, dcfg), dcfg));
  }

  // The figure's series: objective at cumulative simulated time.
  for (const auto& r : results) {
    std::printf("--- %s ---\n", r.solver.c_str());
    Table t({"epoch", "sim time (s)", "objective", "test acc"});
    const std::size_t stride = std::max<std::size_t>(1, r.trace.size() / 10);
    for (std::size_t i = 0; i < r.trace.size(); i += stride) {
      const auto& it = r.trace[i];
      t.add_row({Table::fmt_int(it.iteration), Table::fmt(it.sim_seconds, 4),
                 Table::fmt(it.objective, 4), Table::fmt(it.test_accuracy, 4)});
    }
    t.print();
    bench::maybe_write_csv(cli, r, "fig1_" + r.solver);
  }

  std::printf("\nsummary (the figure's headline comparison):\n");
  Table s({"solver", "avg epoch (ms)", "final objective",
           "sim time to obj<=0.25n*logC/n (s)"});
  // Paper quotes "objective < 0.25" on per-sample scale; our objective is
  // a sum, so scale the threshold by n.
  const double target = 0.25 * static_cast<double>(tt.train.num_samples());
  for (const auto& r : results) {
    const double t_hit = r.sim_time_to_objective(target);
    s.add_row({r.solver, Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3),
               Table::fmt(r.final_objective, 4),
               t_hit < 0 ? "not reached" : Table::fmt(t_hit, 4)});
  }
  s.print();
  std::printf(
      "\nexpected shape: DANE/AIDE epochs are orders of magnitude slower\n"
      "than Newton-ADMM/GIANT epochs; Newton-ADMM reaches a low objective\n"
      "first (paper: seconds vs ~1.5 hours).\n");
  return 0;
}
