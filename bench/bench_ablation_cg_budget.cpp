// Ablation: the inexactness knobs of the local Newton solver — CG budget
// (the paper sweeps 10/20/30 in Figure 4 and uses θ-relative early
// stopping, eq. 3b) and the number of local Newton steps per ADMM
// iteration.
//
// More inner work per epoch raises epoch cost but cuts the number of
// outer iterations; the sweet spot the paper lands on (10 CG iterations,
// 1 Newton step) is visible as the time-to-objective minimum.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Ablation: local-solver inexactness (CG budget, Newton steps)");
  bench::add_common_options(cli);
  cli.add_int("workers", 8, "number of simulated workers");
  cli.add_int("epochs", 40, "fixed epoch budget per configuration");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Ablation — CG budget and local Newton steps",
                "paper eq. 3b inexactness / Figure 4's CG sweep");

  auto cfg = bench::config_from_cli(cli, "mnist");
  cfg.n_train /= 2;
  cfg.workers = static_cast<int>(cli.get_int("workers"));
  cfg.lambda = 1e-5;
  cfg.iterations = static_cast<int>(cli.get_int("epochs"));
  const auto tt = runner::make_data(cfg);
  std::printf("dataset: mnist-like n=%zu, %d workers, %d-epoch budget\n\n",
              tt.train.num_samples(), cfg.workers, cfg.iterations);

  Table t({"cg iters", "newton steps", "avg epoch (ms)", "final objective",
           "sim time total (s)"});
  for (int cg : {5, 10, 20, 30}) {
    for (int steps : {1, 2}) {
      auto run_cfg = cfg;
      run_cfg.cg_iterations = cg;
      run_cfg.local_newton_steps = steps;
      run_cfg.evaluate_accuracy = false;
      auto cluster = runner::make_cluster(run_cfg);
      const auto r = runner::run_solver("newton-admm", cluster,
      runner::shard_for_solver("newton-admm", tt.train, nullptr, run_cfg), run_cfg);
      t.add_row({std::to_string(cg), std::to_string(steps),
                 Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3),
                 Table::fmt(r.final_objective, 4),
                 Table::fmt(r.total_sim_seconds, 4)});
    }
  }
  t.print();
  std::printf(
      "\nexpected shape: epoch cost grows ~linearly with the inner budget;\n"
      "the objective after a fixed epoch count improves with more inner\n"
      "work but with diminishing returns — the paper's 10-CG/1-step\n"
      "default sits near the efficiency knee.\n");
  return 0;
}
