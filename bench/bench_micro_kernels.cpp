// Micro-benchmarks (google-benchmark) for the kernels behind every epoch:
// dense GEMM in the two orientations the softmax objective uses, CSR
// SpMM, the fused softmax forward / gradient / Hessian-vector product,
// and the simulated collectives. Sizes are drawn from the four datasets.
#include <benchmark/benchmark.h>

#include "comm/cluster.hpp"
#include "data/generators.hpp"
#include "la/dense_matrix.hpp"
#include "la/sparse_matrix.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "support/rng.hpp"

namespace {

using namespace nadmm;

la::DenseMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix m(r, c);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

// Shapes: {n, p, C-1} for (samples × features × classes).
void BM_GemmScores(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  const auto c = static_cast<std::size_t>(state.range(2));
  const auto a = random_matrix(n, p, 1);
  const auto x = random_matrix(p, c, 2);
  la::DenseMatrix s(n, c);
  for (auto _ : state) {
    la::gemm_nn(1.0, a, x, 0.0, s);
    benchmark::DoNotOptimize(s.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
}
BENCHMARK(BM_GemmScores)
    ->Args({2000, 28, 1})     // HIGGS-like
    ->Args({2000, 784, 9})    // MNIST-like
    ->Args({600, 3072, 9})    // CIFAR-like
    ->Unit(benchmark::kMicrosecond);

void BM_GemmGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  const auto c = static_cast<std::size_t>(state.range(2));
  const auto a = random_matrix(n, p, 3);
  const auto w = random_matrix(n, c, 4);
  la::DenseMatrix g(p, c);
  for (auto _ : state) {
    la::gemm_tn(1.0, a, w, 0.0, g);
    benchmark::DoNotOptimize(g.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
}
BENCHMARK(BM_GemmGradient)
    ->Args({2000, 784, 9})
    ->Args({600, 3072, 9})
    ->Unit(benchmark::kMicrosecond);

void BM_SparseSpmm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  auto tt = data::make_e18_like(n, 10, p, 5);
  const auto& a = tt.train.sparse_features();
  const auto x = random_matrix(p, 19, 6);
  la::DenseMatrix s(a.rows(), 19);
  for (auto _ : state) {
    la::spmm_nn(1.0, a, x, 0.0, s);
    benchmark::DoNotOptimize(s.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * a.nnz() * 19));
}
BENCHMARK(BM_SparseSpmm)->Args({1500, 1400})->Unit(benchmark::kMicrosecond);

void BM_SoftmaxForward(benchmark::State& state) {
  auto tt = data::make_mnist_like(static_cast<std::size_t>(state.range(0)),
                                  10, 7);
  model::SoftmaxObjective obj(tt.train, 1e-5);
  Rng rng(8);
  std::vector<double> x(obj.dim());
  for (auto _ : state) {
    // Perturb so the forward cache misses every iteration.
    x[rng.uniform_index(x.size())] += 1e-6;
    benchmark::DoNotOptimize(obj.value(x));
  }
}
BENCHMARK(BM_SoftmaxForward)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_SoftmaxHvpCached(benchmark::State& state) {
  // The CG inner loop: repeated products at a fixed point (cached forward).
  auto tt = data::make_mnist_like(static_cast<std::size_t>(state.range(0)),
                                  10, 9);
  model::SoftmaxObjective obj(tt.train, 1e-5);
  Rng rng(10);
  std::vector<double> x(obj.dim()), v(obj.dim()), hv(obj.dim());
  for (double& e : v) e = rng.normal();
  (void)obj.value(x);
  for (auto _ : state) {
    obj.hessian_vec(x, v, hv);
    benchmark::DoNotOptimize(hv.data());
  }
}
BENCHMARK(BM_SoftmaxHvpCached)->Arg(2000)->Unit(benchmark::kMicrosecond);

void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  comm::SimCluster cluster(ranks, la::p100_device(), comm::ideal_network());
  for (auto _ : state) {
    cluster.run([&](comm::RankCtx& ctx) {
      std::vector<double> v(len, 1.0);
      for (int i = 0; i < 8; ++i) ctx.allreduce_sum(v);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(len) * ranks);
}
BENCHMARK(BM_Allreduce)
    ->Args({4, 7056})   // MNIST-like parameter vector (784×9)
    ->Args({8, 7056})
    ->Unit(benchmark::kMicrosecond);

void BM_VectorDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_VectorDot)->Arg(7056)->Arg(27648)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
