// Kernel-engine benchmarks: every rewired hot-path kernel (register-
// blocked gemm_nn, two-phase gemm_tn / gemv_t / spmm_tn, fused softmax
// forward) against the seed critical-section implementations preserved in
// la::kernels::reference, at 1/4/8 OpenMP threads, over dense MNIST-like
// / CIFAR-like and sparse E18-like shapes.
//
// The JSON output feeds tools/perf_smoke.py: the committed
// BENCH_kernels.json baseline records the engine-vs-seed speedup per
// (kernel, threads), and the CI perf-smoke job fails when any measured
// speedup regresses more than 25% below it. Speedups are same-run,
// same-machine ratios, so the gate is robust to runner hardware.
//
// Every kernel also reports absolute throughput (items_per_second is
// GFLOP/s-style work items, bytes_per_second is memory traffic), and two
// host-peak probes — a STREAM-style triad for bandwidth and an unfused
// mul+add chain for compute — record what this machine can actually do.
// tools/perf_smoke.py divides the two to gate "fraction of host peak",
// which is machine-normalized the same way the speedup ratios are.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdint>
#include <vector>

#include "data/generators.hpp"
#include "la/dense_matrix.hpp"
#include "la/kernels.hpp"
#include "la/simd.hpp"
#include "la/sparse_matrix.hpp"
#include "model/softmax.hpp"
#include "support/rng.hpp"

namespace {

using namespace nadmm;

void set_threads(std::int64_t threads) {
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(threads));
#else
  static_cast<void>(threads);
#endif
}

la::DenseMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix m(r, c);
  for (double& v : m.data()) v = rng.normal();
  return m;
}

// ------------------------------------------------- gemm_nn (scores A·X)

template <bool kEngine>
void BM_GemmNN_Mnist(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 2000, p = 784, c = 9;
  const auto a = random_matrix(n, p, 1);
  const auto x = random_matrix(p, c, 2);
  la::DenseMatrix s(n, c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemm_nn(1.0, a, x, 0.0, s);
    } else {
      la::kernels::reference::gemm_nn(1.0, a, x, 0.0, s);
    }
    benchmark::DoNotOptimize(s.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (n * p + p * c + n * c)));
}

template <bool kEngine>
void BM_GemmNN_Cifar(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 600, p = 3072, c = 9;
  const auto a = random_matrix(n, p, 3);
  const auto x = random_matrix(p, c, 4);
  la::DenseMatrix s(n, c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemm_nn(1.0, a, x, 0.0, s);
    } else {
      la::kernels::reference::gemm_nn(1.0, a, x, 0.0, s);
    }
    benchmark::DoNotOptimize(s.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (n * p + p * c + n * c)));
}

// ------------------------------------------- gemm_tn (gradient Aᵀ·W)

template <bool kEngine>
void BM_GemmTN_Mnist(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 2000, p = 784, c = 9;
  const auto a = random_matrix(n, p, 5);
  const auto w = random_matrix(n, c, 6);
  la::DenseMatrix g(p, c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemm_tn(1.0, a, w, 0.0, g);
    } else {
      la::kernels::reference::gemm_tn(1.0, a, w, 0.0, g);
    }
    benchmark::DoNotOptimize(g.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (n * p + n * c + p * c)));
}

template <bool kEngine>
void BM_GemmTN_MnistShard(benchmark::State& state) {
  set_threads(state.range(0));
  // Per-rank gradient shard in a 16-worker weak-scaling run with a 10%
  // subsampled Hessian panel: few samples against the full parameter
  // panel, so the seed's serialized reduce is a large fraction of the
  // per-thread compute.
  const std::size_t n = 250, p = 784, c = 9;
  const auto a = random_matrix(n, p, 15);
  const auto w = random_matrix(n, c, 16);
  la::DenseMatrix g(p, c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemm_tn(1.0, a, w, 0.0, g);
    } else {
      la::kernels::reference::gemm_tn(1.0, a, w, 0.0, g);
    }
    benchmark::DoNotOptimize(g.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (n * p + n * c + p * c)));
}

template <bool kEngine>
void BM_GemmTN_Cifar(benchmark::State& state) {
  set_threads(state.range(0));
  // Weak-scaling CIFAR shard: wider feature dimension, so the seed's
  // serialized reduce covers a 3072×9 panel per thread.
  const std::size_t n = 600, p = 3072, c = 9;
  const auto a = random_matrix(n, p, 13);
  const auto w = random_matrix(n, c, 14);
  la::DenseMatrix g(p, c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemm_tn(1.0, a, w, 0.0, g);
    } else {
      la::kernels::reference::gemm_tn(1.0, a, w, 0.0, g);
    }
    benchmark::DoNotOptimize(g.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p * c));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (n * p + n * c + p * c)));
}

// --------------------------------------------------- gemv_t (CG vector)

template <bool kEngine>
void BM_GemvT_Mnist(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 2000, p = 784;
  const auto a = random_matrix(n, p, 7);
  Rng rng(8);
  std::vector<double> x(n), y(p);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::gemv_t(1.0, a, x, 0.0, y);
    } else {
      la::kernels::reference::gemv_t(1.0, a, x, 0.0, y);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * p));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (n * p + n + p)));
}

// -------------------------------------- spmm_tn (sparse gradient Aᵀ·W)

template <bool kEngine>
void BM_SpmmTN_E18(benchmark::State& state) {
  set_threads(state.range(0));
  // Paper-scale E18 shard: p = 27,998 genes with a weak-scaling per-rank
  // sample count. The output panel is p×19, so this is the regime where
  // the seed's critical-section reduce serializes a 4.3 MB panel per
  // thread while the per-thread compute shrinks with the thread count.
  const auto tt = data::make_e18_like(400, 10, 27998, 9);
  const auto& a = tt.train.sparse_features();
  const std::size_t c = 19;
  const auto w = random_matrix(a.rows(), c, 10);
  la::DenseMatrix g(a.cols(), c);
  for (auto _ : state) {
    if constexpr (kEngine) {
      la::spmm_tn(1.0, a, w, 0.0, g);
    } else {
      la::kernels::reference::spmm_tn(1.0, a, w, 0.0, g);
    }
    benchmark::DoNotOptimize(g.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * a.nnz() * c));
  // CSR storage (values + col_idx + row_ptr) plus the dense W read and
  // the G panel write; the cached-CSC path touches the transpose instead
  // but the byte count is the same.
  const std::size_t csr_bytes =
      a.nnz() * (sizeof(double) + sizeof(std::int64_t)) +
      (a.rows() + 1) * sizeof(std::int64_t);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(csr_bytes +
                                8 * (a.rows() * c + a.cols() * c)));
}

// ------------------------------------------------ fused softmax forward

template <bool kEngine>
void BM_SoftmaxForward(benchmark::State& state) {
  set_threads(state.range(0));
  const std::size_t n = 4000, c = 9;
  const auto scores = random_matrix(n, c, 11);
  Rng rng(12);
  std::vector<std::int32_t> labels(n);
  for (auto& y : labels) y = static_cast<std::int32_t>(rng.uniform_index(c + 1));
  la::DenseMatrix probs(n, c);
  std::vector<double> lse(n);
  for (auto _ : state) {
    double loss;
    if constexpr (kEngine) {
      loss = la::kernels::softmax_forward(scores, labels, probs, lse);
    } else {
      loss = la::kernels::reference::softmax_forward(scores, labels, probs, lse);
    }
    benchmark::DoNotOptimize(loss);
    benchmark::DoNotOptimize(probs.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * c));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * (2 * n * c + n)));
}

// ------------------------------------------- CSC materialization (E18)

template <bool kEngine>
void BM_CscBuildE18(benchmark::State& state) {
  set_threads(state.range(0));
  // Same E18-like shard as the spmm bench: the CSC transpose this build
  // produces is exactly what the cached wide-shard gather consumes.
  const auto tt = data::make_e18_like(400, 10, 27998, 9);
  const auto& a = tt.train.sparse_features();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (auto _ : state) {
    auto t = la::detail::build_transposed(a.rows(), a.cols(), rp, ci, va,
                                          /*parallel=*/kEngine);
    benchmark::DoNotOptimize(t.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
  // Read the CSR triple, write the CSC triple (counting pass rereads
  // col_idx but that is bookkeeping, not the bound).
  const std::size_t triple_bytes =
      a.nnz() * (sizeof(double) + sizeof(std::int64_t)) +
      (a.rows() + a.cols() + 2) * sizeof(std::int64_t);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * triple_bytes));
}

// ------------------------------------------------------ host peak probes
//
// Not Engine/Seed pairs on purpose: these two record what THIS machine
// can do, so perf_smoke.py can express kernel throughput as a fraction
// of host peak instead of an absolute number that only means something
// on one runner.

// STREAM-style triad a[i] = b[i] + s*c[i]: sustainable bandwidth.
void BM_HostPeak_Triad(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << 22;  // 3 × 32 MiB streams
  std::vector<double> a(n, 0.0), b(n, 1.5), c(n, 2.5);
  for (auto _ : state) {
    const double s = 3.0;
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  // 24 B/element: read b and c, write a (write-allocate traffic ignored,
  // matching the classic STREAM accounting).
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(24 * n));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}

// Unfused mul+add chains on the active SIMD backend: the compute peak an
// engine kernel could reach under the bit-identity contract (the engine
// never emits FMA, so neither does the probe — -ffp-contract=off keeps
// the compiler from fusing these).
void BM_HostPeak_Fma(benchmark::State& state) {
  using V = la::simd::Active;
  constexpr std::size_t kChains = 8;
  constexpr std::size_t kSteps = 4096;
  V acc[kChains];
  double seed_vals[V::width];
  for (std::size_t l = 0; l < V::width; ++l) {
    seed_vals[l] = 1.0 + 1e-9 * static_cast<double>(l);
  }
  const V m = V::broadcast(1.0 + 1e-12);
  const V add = V::broadcast(1e-12);
  for (auto& v : acc) v = V::load(seed_vals);
  for (auto _ : state) {
    for (std::size_t s = 0; s < kSteps; ++s) {
      for (auto& v : acc) v = v * m + add;
    }
    double sink[V::width];
    acc[0].store(sink);
    benchmark::DoNotOptimize(sink[0]);
  }
  // 2 flops (mul + add) per lane per chain step.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(2 * V::width * kChains * kSteps));
}

// clang-format off
BENCHMARK_TEMPLATE(BM_GemmNN_Mnist, true)->Name("BM_GemmNN_Mnist_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmNN_Mnist, false)->Name("BM_GemmNN_Mnist_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmNN_Cifar, true)->Name("BM_GemmNN_Cifar_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmNN_Cifar, false)->Name("BM_GemmNN_Cifar_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN_Mnist, true)->Name("BM_GemmTN_Mnist_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN_Mnist, false)->Name("BM_GemmTN_Mnist_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN_MnistShard, true)->Name("BM_GemmTN_MnistShard_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN_MnistShard, false)->Name("BM_GemmTN_MnistShard_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN_Cifar, true)->Name("BM_GemmTN_Cifar_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemmTN_Cifar, false)->Name("BM_GemmTN_Cifar_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemvT_Mnist, true)->Name("BM_GemvT_Mnist_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_GemvT_Mnist, false)->Name("BM_GemvT_Mnist_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SpmmTN_E18, true)->Name("BM_SpmmTN_E18_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SpmmTN_E18, false)->Name("BM_SpmmTN_E18_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SoftmaxForward, true)->Name("BM_SoftmaxForward_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_SoftmaxForward, false)->Name("BM_SoftmaxForward_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_CscBuildE18, true)->Name("BM_CscBuildE18_Engine")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK_TEMPLATE(BM_CscBuildE18, false)->Name("BM_CscBuildE18_Seed")->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HostPeak_Triad)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HostPeak_Fma)->Unit(benchmark::kMicrosecond);
// clang-format on

}  // namespace

// Custom main so every bench JSON records which dispatch rung it ran on —
// perf_smoke baselines from different ISAs should not be compared blindly.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("nadmm_isa", nadmm::la::kernels::active_isa());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
