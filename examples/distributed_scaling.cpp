// Scaling study example: runs Newton-ADMM under strong and weak scaling
// on a chosen dataset and prints how epoch time decomposes into compute
// and communication — the trade-off the paper's Figure 2 explores.
//
//   ./examples/distributed_scaling --dataset mnist --network eth10
#include <cstdio>

#include "runner/harness.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Strong/weak scaling of Newton-ADMM with time breakdown");
  cli.add_string("dataset", "mnist", "higgs|mnist|cifar|e18|blobs");
  cli.add_int("n-train", 8000, "total samples (strong) / 4x shard (weak)");
  cli.add_int("epochs", 8, "epochs to average over");
  cli.add_string("device", "p100", "device model");
  cli.add_string("network", "ib100", "network model");
  if (!cli.parse(argc, argv)) return 0;

  for (const char* mode : {"strong", "weak"}) {
    std::printf("\n=== %s scaling (%s, network=%s) ===\n", mode,
                cli.get_string("dataset").c_str(),
                cli.get_string("network").c_str());
    Table t({"workers", "n (total)", "epoch (ms)", "compute share",
             "comm share"});
    for (int workers : {1, 2, 4, 8}) {
      runner::ExperimentConfig cfg;
      cfg.dataset = cli.get_string("dataset");
      cfg.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
      if (std::string(mode) == "weak") {
        cfg.n_train = cfg.n_train / 4 * static_cast<std::size_t>(workers);
      }
      cfg.n_test = 200;
      cfg.workers = workers;
      cfg.device = cli.get_string("device");
      cfg.network = cli.get_string("network");
      cfg.iterations = static_cast<int>(cli.get_int("epochs"));
      const auto tt = runner::make_data(cfg);
      auto cluster = runner::make_cluster(cfg);
      const auto r =
          runner::run_solver("newton-admm", cluster,
      runner::shard_for_solver("newton-admm", tt.train, nullptr, cfg), cfg);
      const double comm = r.trace.back().comm_sim_seconds;
      const double total = r.total_sim_seconds;
      t.add_row({std::to_string(workers),
                 Table::fmt_int(static_cast<long long>(tt.train.num_samples())),
                 Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3),
                 Table::fmt(100.0 * (total - comm) / total, 1) + "%",
                 Table::fmt(100.0 * comm / total, 1) + "%"});
    }
    t.print();
  }
  std::printf(
      "\nTry --network eth1 or wan to watch the communication share grow —\n"
      "and Newton-ADMM's single round per epoch keep it modest.\n");
  return 0;
}
