// High-dimensional sparse classification example (the paper's E18
// single-cell RNA workload): trains 20-class softmax on CSR count data
// with Newton-ADMM and GIANT, entirely Hessian-free — the dense Hessian
// of this problem would have ((C−1)p)² entries and could never be formed.
//
//   ./examples/sparse_highdim --features 2800 --workers 16
#include <cstdio>

#include "runner/harness.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Sparse high-dimensional (E18-like) training");
  cli.add_int("n-train", 6000, "training cells");
  cli.add_int("features", 1400, "genes (paper: 27,998)");
  cli.add_int("workers", 16, "simulated workers (paper uses 16 for E18)");
  cli.add_int("epochs", 20, "epochs per solver");
  cli.add_double("lambda", 1e-3, "l2 regularization");
  if (!cli.parse(argc, argv)) return 0;

  runner::ExperimentConfig cfg;
  cfg.dataset = "e18";
  cfg.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  cfg.n_test = cfg.n_train / 10;
  cfg.e18_features = static_cast<std::size_t>(cli.get_int("features"));
  cfg.workers = static_cast<int>(cli.get_int("workers"));
  cfg.iterations = static_cast<int>(cli.get_int("epochs"));
  cfg.lambda = cli.get_double("lambda");

  const auto tt = runner::make_data(cfg);
  const std::size_t dim =
      tt.train.num_features() * (static_cast<std::size_t>(tt.train.num_classes()) - 1);
  std::printf("E18-like: %zu cells x %zu genes, %d cell types, density %.3f\n",
              tt.train.num_samples(), tt.train.num_features(),
              tt.train.num_classes(), tt.train.feature_density());
  std::printf("parameters: %zu — dense Hessian would hold %.2e entries\n\n",
              dim, static_cast<double>(dim) * static_cast<double>(dim));

  Table t({"solver", "avg epoch (ms)", "final objective", "test accuracy"});
  for (const char* solver : {"newton-admm", "giant"}) {
    auto cluster = runner::make_cluster(cfg);
    const auto r = runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, cfg), cfg);
    t.add_row({r.solver, Table::fmt(r.avg_epoch_sim_seconds * 1e3, 3),
               Table::fmt(r.final_objective, 4),
               Table::fmt(100.0 * r.final_test_accuracy, 2) + "%"});
  }
  t.print();
  return 0;
}
