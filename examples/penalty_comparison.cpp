// Penalty-policy walkthrough: how the ADMM penalty ρ evolves under the
// three policies the library ships (fixed, residual balancing, spectral
// penalty selection), and what that does to convergence — the design
// choice the paper motivates in §2.2.
//
//   ./examples/penalty_comparison --dataset cifar
#include <cstdio>

#include "runner/harness.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("ADMM penalty policies: fixed vs residual balancing vs SPS");
  cli.add_string("dataset", "mnist", "higgs|mnist|cifar|e18|blobs");
  cli.add_int("n-train", 4000, "training samples");
  cli.add_int("workers", 8, "simulated workers");
  cli.add_int("epochs", 60, "ADMM iterations");
  cli.add_double("rho0", 1.0, "initial penalty");
  if (!cli.parse(argc, argv)) return 0;

  runner::ExperimentConfig cfg;
  cfg.dataset = cli.get_string("dataset");
  cfg.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  cfg.n_test = cfg.n_train / 10;
  cfg.workers = static_cast<int>(cli.get_int("workers"));
  cfg.iterations = static_cast<int>(cli.get_int("epochs"));
  const auto tt = runner::make_data(cfg);

  for (const char* policy : {"fixed", "rb", "sps"}) {
    cfg.penalty = policy;
    cfg.rho0 = cli.get_double("rho0");
    auto cluster = runner::make_cluster(cfg);
    const auto r =
        runner::run_solver("newton-admm", cluster,
      runner::shard_for_solver("newton-admm", tt.train, &tt.test, cfg), cfg);
    std::printf("\n--- policy: %s ---\n", policy);
    Table t({"iter", "objective", "primal res", "dual res", "mean rho"});
    const std::size_t stride = std::max<std::size_t>(1, r.trace.size() / 8);
    for (std::size_t i = 0; i < r.trace.size(); i += stride) {
      const auto& it = r.trace[i];
      t.add_row({Table::fmt_int(it.iteration), Table::fmt(it.objective, 4),
                 Table::fmt(it.primal_residual, 5),
                 Table::fmt(it.dual_residual, 5),
                 Table::fmt(it.rho_mean, 4)});
    }
    t.print();
    std::printf("final objective %.4f, test accuracy %.2f%%\n",
                r.final_objective, 100.0 * r.final_test_accuracy);
  }
  std::printf(
      "\nSPS adapts rho per node from curvature estimates and typically\n"
      "drives both residuals down fastest (paper §2.2).\n");
  return 0;
}
