// Train on a real dataset from disk (LIBSVM format — the format the real
// HIGGS / MNIST / E18 distributions ship in). Demonstrates the loader,
// feature scaling, train/test splitting and any of the library's solvers.
//
//   ./examples/train_libsvm path/to/data.libsvm --solver newton-admm
#include <cstdio>

#include "data/io.hpp"
#include "data/standardize.hpp"
#include "runner/harness.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Train a softmax classifier on a LIBSVM file");
  cli.add_string("solver", "newton-admm",
                 "any registered solver (see `nadmm list`)");
  cli.add_int("workers", 4, "simulated workers");
  cli.add_int("epochs", 50, "training epochs");
  cli.add_double("lambda", 1e-5, "l2 regularization");
  cli.add_double("test-fraction", 0.2, "held-out fraction");
  cli.add_flag("scale-features", "standardize features before training");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.positional().empty()) {
    std::fprintf(stderr, "usage: train_libsvm <file.libsvm> [options]\n");
    return 1;
  }

  auto full = data::load_libsvm(cli.positional().front());
  std::printf("loaded %zu samples, %zu features, %d classes (density %.3f)\n",
              full.num_samples(), full.num_features(), full.num_classes(),
              full.feature_density());

  const auto n_test = static_cast<std::size_t>(
      cli.get_double("test-fraction") * static_cast<double>(full.num_samples()));
  const std::size_t n_train = full.num_samples() - n_test;
  auto train = full.row_slice(0, n_train);
  auto test = full.row_slice(n_train, full.num_samples());

  if (cli.get_flag("scale-features")) {
    data::Standardizer scaler;
    scaler.fit(train);
    train = scaler.transform(train);
    test = scaler.transform(test);
  }

  runner::ExperimentConfig cfg;
  cfg.workers = static_cast<int>(cli.get_int("workers"));
  cfg.iterations = static_cast<int>(cli.get_int("epochs"));
  cfg.lambda = cli.get_double("lambda");
  auto cluster = runner::make_cluster(cfg);
  const auto result = runner::run_solver(cli.get_string("solver"), cluster,
      runner::shard_for_solver(cli.get_string("solver"), train, &test, cfg), cfg);
  runner::print_trace_summary(result);
  return 0;
}
