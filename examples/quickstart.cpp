// Quickstart: train a multiclass softmax classifier with Newton-ADMM on a
// synthetic Gaussian-blob problem, using 4 simulated GPU workers.
//
//   ./examples/quickstart [--workers N] [--iterations K]
//
// Walks through the whole public API: generate data → build a simulated
// cluster → run the solver → inspect the trace and test accuracy.
#include <cstdio>

#include "runner/harness.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  nadmm::CliParser cli(
      "Newton-ADMM quickstart on a synthetic 10-class problem");
  cli.add_int("workers", 4, "number of simulated workers");
  cli.add_int("iterations", 30, "ADMM outer iterations (epochs)");
  cli.add_int("n-train", 4000, "training samples");
  cli.add_double("lambda", 1e-5, "l2 regularization");
  if (!cli.parse(argc, argv)) return 0;

  nadmm::runner::ExperimentConfig config;
  config.dataset = "blobs";
  config.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  config.n_test = config.n_train / 4;
  config.workers = static_cast<int>(cli.get_int("workers"));
  config.iterations = static_cast<int>(cli.get_int("iterations"));
  config.lambda = cli.get_double("lambda");

  std::printf("generating %zu train / %zu test samples...\n", config.n_train,
              config.n_test);
  const auto data = nadmm::runner::make_data(config);
  std::printf("dataset: n=%zu p=%zu C=%d density=%.2f\n",
              data.train.num_samples(), data.train.num_features(),
              data.train.num_classes(), data.train.feature_density());

  auto cluster = nadmm::runner::make_cluster(config);
  std::printf("cluster: %d ranks, device=%s, network=%s\n\n", cluster.size(),
              config.device.c_str(), config.network.c_str());

  const auto result = nadmm::runner::run_solver(
      "newton-admm", cluster,
      nadmm::runner::shard_for_solver("newton-admm", data.train, &data.test,
                                      config),
      config);
  nadmm::runner::print_trace_summary(result);

  std::printf("\nfinal test accuracy: %.2f%%\n",
              100.0 * result.final_test_accuracy);
  return 0;
}
