// Single-node solver shoot-out: the paper's §1 motivation in one run.
// Newton-CG (second order) against gradient descent, heavy-ball
// momentum, Adagrad and Adam (first order) on the same convex softmax
// problem — iteration counts, objective quality, and the first-order
// family's step-size sensitivity.
//
// All solvers are invoked through the registry's single-node family, so
// this example doubles as a tour of the uniform run interface.
//
//   ./examples/single_node_solvers --dataset mnist --n-train 2000
#include <cstdio>

#include "runner/registry.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Newton-CG vs first-order methods on one node");
  cli.add_string("dataset", "blobs", "higgs|mnist|cifar|e18|blobs");
  cli.add_int("n-train", 2000, "training samples");
  cli.add_double("lambda", 1e-3, "l2 regularization");
  cli.add_int("fo-iterations", 3000, "first-order iteration budget");
  if (!cli.parse(argc, argv)) return 0;

  runner::ExperimentConfig cfg;
  cfg.dataset = cli.get_string("dataset");
  cfg.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  cfg.n_test = 200;
  cfg.e18_features = 64;
  cfg.workers = 1;
  cfg.lambda = cli.get_double("lambda");
  cfg.gradient_tol = 1e-6;  // common stopping rule for the whole field

  const auto tt = runner::make_data(cfg);
  std::printf("problem: n=%zu, p=%zu, C=%d\n\n", tt.train.num_samples(),
              tt.train.num_features(), tt.train.num_classes());

  // Hand-tuned step size per first-order rule (the tuning burden itself
  // is the point of this comparison; Newton-CG needs none).
  struct Entry {
    const char* solver;
    double step;  // 0: solver default / line search
  };
  Table t({"solver", "step size", "iterations", "final objective",
           "sim (s)", "wall (s)"});
  auto cluster = runner::make_cluster(cfg);
  for (const auto& [solver, step] :
       {Entry{"newton-cg", 0.0}, Entry{"gd", 2e-3}, Entry{"momentum", 5e-4},
        Entry{"adagrad", 0.5}, Entry{"adam", 0.05}}) {
    auto run_cfg = cfg;
    run_cfg.fo_step = step;
    run_cfg.iterations = std::string(solver) == "newton-cg"
                             ? 100
                             : static_cast<int>(cli.get_int("fo-iterations"));
    const auto r = runner::SolverRegistry::instance().run(
        solver, cluster,
        runner::shard_for_solver(solver, tt.train, &tt.test, run_cfg),
        run_cfg);
    t.add_row({r.solver, step > 0 ? Table::fmt(step, 4) : "line search",
               Table::fmt_int(r.iterations), Table::fmt(r.final_objective, 4),
               Table::fmt(r.total_sim_seconds, 4),
               Table::fmt(r.total_wall_seconds, 2)});
  }
  t.print();
  std::printf(
      "\nNewton-CG needs orders of magnitude fewer iterations and no\n"
      "step-size tuning — the gap the paper's distributed design builds on.\n");
  return 0;
}
