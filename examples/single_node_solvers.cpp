// Single-node solver shoot-out: the paper's §1 motivation in one run.
// Newton-CG (second order) against gradient descent, heavy-ball
// momentum, Adagrad and Adam (first order) on the same convex softmax
// problem — iteration counts, objective quality, and the first-order
// family's step-size sensitivity.
//
//   ./examples/single_node_solvers --dataset mnist --n-train 2000
#include <cstdio>

#include "data/generators.hpp"
#include "model/softmax.hpp"
#include "solvers/first_order.hpp"
#include "solvers/newton.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace nadmm;
  CliParser cli("Newton-CG vs first-order methods on one node");
  cli.add_string("dataset", "blobs", "higgs|mnist|cifar|e18|blobs");
  cli.add_int("n-train", 2000, "training samples");
  cli.add_double("lambda", 1e-3, "l2 regularization");
  cli.add_int("fo-iterations", 3000, "first-order iteration budget");
  if (!cli.parse(argc, argv)) return 0;

  const auto tt = data::make_by_name(cli.get_string("dataset"),
                                     static_cast<std::size_t>(cli.get_int("n-train")),
                                     200, 64, 42);
  model::SoftmaxObjective objective(tt.train, cli.get_double("lambda"));
  const std::size_t dim = objective.dim();
  std::printf("problem: n=%zu, d=%zu, C=%d\n\n", tt.train.num_samples(), dim,
              tt.train.num_classes());

  Table t({"solver", "step size", "iterations", "final objective",
           "grad norm", "wall (s)"});

  {
    solvers::NewtonOptions opts;
    opts.gradient_tol = 1e-6;
    opts.max_iterations = 100;
    WallTimer timer;
    const auto r = solvers::newton_cg(objective,
                                      std::vector<double>(dim, 0.0), opts);
    t.add_row({"newton-cg", "line search", Table::fmt_int(r.iterations),
               Table::fmt(r.final_value, 4),
               Table::fmt(r.final_gradient_norm, 6),
               Table::fmt(timer.seconds(), 2)});
  }

  struct Entry {
    solvers::FirstOrderRule rule;
    double step;
  };
  for (const auto& [rule, step] :
       {Entry{solvers::FirstOrderRule::kGradientDescent, 2e-3},
        Entry{solvers::FirstOrderRule::kMomentum, 5e-4},
        Entry{solvers::FirstOrderRule::kAdagrad, 0.5},
        Entry{solvers::FirstOrderRule::kAdam, 0.05}}) {
    solvers::FirstOrderOptions opts;
    opts.rule = rule;
    opts.step_size = step;
    opts.max_iterations = static_cast<int>(cli.get_int("fo-iterations"));
    opts.gradient_tol = 1e-6;
    WallTimer timer;
    const auto r = solvers::first_order_minimize(
        objective, {}, std::vector<double>(dim, 0.0), opts);
    t.add_row({to_string(rule), Table::fmt(step, 4),
               Table::fmt_int(r.iterations), Table::fmt(r.final_value, 4),
               Table::fmt(r.final_gradient_norm, 6),
               Table::fmt(timer.seconds(), 2)});
  }
  t.print();
  std::printf(
      "\nNewton-CG needs orders of magnitude fewer iterations and no\n"
      "step-size tuning — the gap the paper's distributed design builds on.\n");
  return 0;
}
